"""A compute node: cores, container slots and memory accounting.

Memory model (paper Sections II-A and III-E): each container is allocated
a fixed amount (128 MB minimum on OpenWhisk) but actually *uses* less; the
difference is the "unused but charged-for" memory that Concord repurposes
into per-application cache instances.  The node tracks, per application,
how much repurposable memory its co-located containers contribute.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.config import MB, SimConfig
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator


@dataclass
class Container:
    """A warm function container pinned to a node."""

    id: int
    node_id: str
    app: str
    function: str
    memory_alloc: int
    memory_used: int
    #: Simulated time of the last invocation served (for grace-period GC).
    last_used: float = 0.0
    #: Number of invocations currently executing inside the container.
    active: int = 0

    @property
    def unused_memory(self) -> int:
        """Allocated-but-unused bytes this container contributes."""
        return max(0, self.memory_alloc - self.memory_used)


class Node:
    """A simulated compute node."""

    _container_ids = itertools.count(1)

    def __init__(self, sim: "Simulator", node_id: str, config: Optional[SimConfig] = None):
        config = config or SimConfig()
        self.sim = sim
        self.id = node_id
        self.config = config
        #: CPU cores; invocations hold one core while *processing* (not
        #: while blocked on storage/network I/O).
        self.cores = Resource(sim, capacity=config.cores_per_node, name=f"{node_id}/cores")
        self.memory_capacity = config.memory_per_node
        self.containers: dict[int, Container] = {}
        #: app name -> containers of that app, in creation order — the
        #: scheduler's warm-container lookup index (containers_of runs on
        #: every request; scanning all containers showed up in profiles).
        self._by_app: dict[str, list[Container]] = {}
        self.alive = True
        metrics = sim.metrics
        if metrics.active:
            self.cores.register_gauges(metrics, "node_cpu", node=node_id)
            metrics.gauge(
                "node_memory_in_use_bytes",
                "Memory allocated to containers on the node.",
                labelnames=("node",),
            ).set_callback(lambda: self.memory_in_use, node=node_id)
            metrics.gauge(
                "node_warm_containers",
                "Warm containers resident on the node.",
                labelnames=("node",),
            ).set_callback(lambda: len(self.containers), node=node_id)

    # -- containers ---------------------------------------------------------
    def add_container(
        self,
        app: str,
        function: str,
        memory_alloc: Optional[int] = None,
        memory_used: int = 24 * MB,
    ) -> Container:
        """Provision a warm container for ``app``/``function``."""
        alloc = memory_alloc if memory_alloc is not None else self.config.container_memory
        if self.memory_in_use + alloc > self.memory_capacity:
            raise MemoryError(f"node {self.id} out of memory")
        container = Container(
            id=next(self._container_ids),
            node_id=self.id,
            app=app,
            function=function,
            memory_alloc=alloc,
            memory_used=memory_used,
            last_used=self.sim.now,
        )
        self.containers[container.id] = container
        self._by_app.setdefault(app, []).append(container)
        return container

    def remove_container(self, container_id: int) -> Optional[Container]:
        """Evict a container (returns it, or None if already gone)."""
        container = self.containers.pop(container_id, None)
        if container is not None:
            group = self._by_app.get(container.app)
            if group is not None:
                group.remove(container)
        return container

    def clear_containers(self) -> None:
        """Drop every container (node crash / restart)."""
        self.containers.clear()
        self._by_app.clear()

    def containers_of(self, app: str, function: Optional[str] = None) -> list[Container]:
        """Warm containers of ``app`` (optionally a specific function)."""
        group = self._by_app.get(app)
        if not group:
            return []
        if function is None:
            return list(group)
        return [c for c in group if c.function == function]

    # -- memory accounting ----------------------------------------------------
    @property
    def memory_in_use(self) -> int:
        """Total memory allocated to containers on this node."""
        return sum(c.memory_alloc for c in self.containers.values())

    def unused_memory(self, app: str) -> int:
        """Repurposable memory contributed by ``app``'s local containers.

        This is the budget a Concord cache instance for ``app`` may grow
        into on this node (paper Section III-E).
        """
        return sum(c.unused_memory for c in self.containers_of(app))

    # -- utilization ----------------------------------------------------------
    @property
    def busy_cores(self) -> int:
        return self.cores.in_use

    @property
    def load(self) -> float:
        """Fraction of cores busy plus queued work, for overload checks."""
        return (self.cores.in_use + self.cores.queue_length) / self.cores.capacity

    @property
    def overloaded(self) -> bool:
        """Whether the scheduler should avoid this node (queue formed)."""
        return self.cores.queue_length > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "DOWN"
        return f"<Node {self.id} {state} containers={len(self.containers)}>"
