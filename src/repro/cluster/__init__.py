"""Simulated cluster: nodes, memory accounting, failure injection."""

from repro.cluster.node import Container, Node
from repro.cluster.cluster import Cluster

__all__ = ["Cluster", "Container", "Node"]
