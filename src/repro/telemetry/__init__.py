"""Time-series telemetry: instruments, sampling, export, anomaly rules.

The public surface:

* :class:`MetricsRegistry` / :data:`NULL_REGISTRY` — labeled
  ``Counter`` / ``Gauge`` / ``HistogramMetric`` instruments, attached to
  a run via ``Simulator(metrics=...)``.
* :class:`Sampler` — sim-process snapshotting every instrument on a
  fixed simulated-clock interval into the registry's
  :class:`TimeSeriesStore`.
* Exporters — :func:`jsonl_dumps` / :func:`csv_dumps` /
  :func:`prometheus_dumps` (and ``export_*`` file writers), all
  byte-deterministic.
* :func:`detect_anomalies` — rule-based SLO/anomaly windows over
  simulated time (invalidation storms, CPU queue buildup, hit-ratio
  collapse, optional latency SLO).

See DESIGN.md §8 for the telemetry model and its determinism contract.
"""

from repro.telemetry.anomaly import (
    Anomaly,
    detect_anomalies,
    detect_cpu_queue_buildup,
    detect_hit_ratio_collapse,
    detect_invalidation_storm,
    detect_slo_latency,
)
from repro.telemetry.export import (
    csv_dumps,
    export_csv,
    export_jsonl,
    export_prometheus,
    jsonl_dumps,
    load_series,
    prometheus_dumps,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricError,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.telemetry.sampler import Sampler
from repro.telemetry.store import Series, TimeSeriesStore
from repro.telemetry.summary import (
    render_sparkline,
    series_stats,
    utilization_summary,
)

__all__ = [
    "Anomaly",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "Sampler",
    "Series",
    "TimeSeriesStore",
    "csv_dumps",
    "detect_anomalies",
    "detect_cpu_queue_buildup",
    "detect_hit_ratio_collapse",
    "detect_invalidation_storm",
    "detect_slo_latency",
    "export_csv",
    "export_jsonl",
    "export_prometheus",
    "jsonl_dumps",
    "load_series",
    "prometheus_dumps",
    "render_sparkline",
    "series_stats",
    "utilization_summary",
]
