"""Labeled metrics instruments and the registry that owns them.

The registry mirrors the tracing layer's design contract
(:mod:`repro.trace.tracer`):

* **Simulated time only** (DET01): values are snapshotted by the
  :class:`~repro.telemetry.sampler.Sampler` at ``sim.now``; nothing here
  reads a wall clock.
* **Deterministic identity** (DET02/DET03): instruments and their
  labeled children live in insertion-ordered dicts keyed by name and
  label-value tuples — never ``id()`` or hash order — so two
  identically-seeded runs produce byte-identical exports regardless of
  ``PYTHONHASHSEED``.
* **Zero-cost no-op mode**: an unconfigured simulator carries the shared
  :data:`NULL_REGISTRY` whose ``active`` flag lets instrumentation sites
  skip callback registration entirely.

Instrumentation is *pull-style* where possible: layers that already
maintain raw counters (network stats, cache stats, resource queues)
register a zero-argument callback via :meth:`Instrument.set_callback`
and pay nothing on their hot paths; the sampler evaluates callbacks only
at sampling instants.  Push-style updates (``inc``/``set``/``observe``)
exist for signals with no resident state to read back.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.store import COUNTER, GAUGE, TimeSeriesStore


class MetricError(ValueError):
    """Inconsistent instrument registration or labeling."""


def _label_key(labelnames: tuple, labelvalues: dict) -> tuple:
    """Validate and order label values into the child key tuple."""
    if sorted(labelvalues) != sorted(labelnames):
        raise MetricError(
            f"label set {sorted(labelvalues)!r} does not match declared "
            f"labelnames {sorted(labelnames)!r}")
    return tuple(str(labelvalues[name]) for name in labelnames)


class _Child:
    """One labeled stream of an instrument."""

    __slots__ = ("_value", "_callback")

    def __init__(self):
        self._value = 0.0
        self._callback = None

    def current(self):
        callback = self._callback
        if callback is not None:
            return callback()
        return self._value


class CounterChild(_Child):
    """Monotonically non-decreasing stream (pushed or pulled)."""

    __slots__ = ()

    def inc(self, amount=1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter increment must be >= 0, got {amount}")
        self._value += amount


class GaugeChild(_Child):
    """Instantaneous level (pushed or pulled)."""

    __slots__ = ()

    def set(self, value) -> None:
        self._value = value

    def inc(self, amount=1.0) -> None:
        self._value += amount

    def dec(self, amount=1.0) -> None:
        self._value -= amount


class HistogramChild:
    """Streaming distribution summary: count / sum / min / max.

    Full per-sample retention belongs to :class:`repro.metrics.stats.
    Histogram`; this child keeps only what the sampler snapshots as
    ``<name>_count`` / ``<name>_sum`` series (plus min/max for the
    summary CLI), so high-rate observation stays O(1) in memory.
    """

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value


class Instrument:
    """Base: a named metric family with a fixed label set."""

    kind: str = ""
    child_class = _Child

    def __init__(self, name: str, help: str, labelnames: tuple):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        # Label-value tuple -> child, in first-touch order.
        self._children: dict = {}

    def labels(self, **labelvalues):
        """Get or create the child for one label-value combination."""
        key = _label_key(self.labelnames, labelvalues)
        child = self._children.get(key)
        if child is None:
            child = self.child_class()
            self._children[key] = child
        return child

    def set_callback(self, callback, **labelvalues):
        """Register a pull callback sampled instead of the pushed value.

        The callback runs only at sampling instants, so instrumented
        layers pay nothing on their hot paths.  Callbacks must be
        deterministic: no wall clock, no iteration over bare sets
        (rule MET01).
        """
        child = self.labels(**labelvalues)
        child._callback = callback
        return child

    def children(self) -> list:
        """(label_pairs, child) in registration order."""
        return [(tuple(zip(self.labelnames, key)), child)
                for key, child in self._children.items()]

    def _sample(self, now: float, store: TimeSeriesStore) -> None:
        for label_pairs, child in self.children():
            series = store.series(self.name, self.kind, label_pairs, self.help)
            series.points.append((now, child.current()))


class Counter(Instrument):
    kind = COUNTER
    child_class = CounterChild

    def inc(self, amount=1.0) -> None:
        """Shorthand for unlabeled counters."""
        self.labels().inc(amount)


class Gauge(Instrument):
    kind = GAUGE
    child_class = GaugeChild

    def set(self, value) -> None:
        """Shorthand for unlabeled gauges."""
        self.labels().set(value)


class HistogramMetric(Instrument):
    kind = "histogram"
    child_class = HistogramChild

    def set_callback(self, callback, **labelvalues):
        raise MetricError("histograms are push-only; use observe()")

    def observe(self, value) -> None:
        """Shorthand for unlabeled histograms."""
        self.labels().observe(value)

    def _sample(self, now: float, store: TimeSeriesStore) -> None:
        # A histogram exports as two counter series, Prometheus-style.
        for label_pairs, child in self.children():
            count = store.series(f"{self.name}_count", COUNTER, label_pairs,
                                 self.help)
            count.points.append((now, child.count))
            total = store.series(f"{self.name}_sum", COUNTER, label_pairs,
                                 self.help)
            total.points.append((now, child.sum))


class MetricsRegistry:
    """Per-run instrument registry bound to one :class:`Simulator`.

    Instruments are get-or-create by name; re-registering with a
    different kind or label set raises :class:`MetricError` so the same
    family can't fork into incompatible shapes across layers.
    """

    active = True

    def __init__(self):
        self._sim = None
        self._instruments: dict = {}
        self.store = TimeSeriesStore()
        self.samples = 0

    # -- wiring -------------------------------------------------------

    def bind(self, sim) -> "MetricsRegistry":
        if self._sim is not None and self._sim is not sim:
            raise ValueError(
                "MetricsRegistry is already bound to another Simulator")
        self._sim = sim
        return self

    @property
    def sim(self):
        return self._sim

    # -- registration -------------------------------------------------

    def _instrument(self, cls, name, help, labelnames):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind or type(existing).__name__}")
            if sorted(existing.labelnames) != sorted(tuple(labelnames)):
                raise MetricError(
                    f"metric {name!r} already registered with labelnames "
                    f"{sorted(existing.labelnames)!r}, got "
                    f"{sorted(tuple(labelnames))!r}")
            return existing
        instrument = cls(name, help, tuple(labelnames))
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "", labelnames: tuple = ()):
        return self._instrument(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: tuple = ()):
        return self._instrument(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: tuple = ()):
        return self._instrument(HistogramMetric, name, help, labelnames)

    def instruments(self) -> list:
        """All instruments, in registration order."""
        return list(self._instruments.values())

    # -- sampling / export --------------------------------------------

    def sample(self, now: float) -> None:
        """Snapshot every instrument into the store at sim time ``now``."""
        for instrument in self._instruments.values():
            instrument._sample(now, self.store)
        self.samples += 1

    def to_dicts(self) -> list:
        """Sampled series as JSON-ready dicts (canonical order)."""
        return self.store.to_dicts()


class _NullChild:
    """Shared do-nothing child returned by :class:`NullRegistry`."""

    __slots__ = ()

    def inc(self, amount=1.0):
        return None

    def dec(self, amount=1.0):
        return None

    def set(self, value):
        return None

    def observe(self, value):
        return None

    def current(self):
        return 0.0


NULL_CHILD = _NullChild()


class _NullInstrument:
    """Shared do-nothing instrument returned by :class:`NullRegistry`."""

    __slots__ = ()

    def labels(self, **labelvalues):
        return NULL_CHILD

    def set_callback(self, callback, **labelvalues):
        return NULL_CHILD

    def children(self) -> list:
        return []

    def inc(self, amount=1.0):
        return None

    def set(self, value):
        return None

    def observe(self, value):
        return None


NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Inactive registry: every operation is a no-op.

    ``active`` is False so instrumentation sites can skip closure
    construction entirely; code that registers unconditionally still
    works and pays only a couple of attribute lookups.
    """

    active = False
    samples = 0

    def __init__(self):
        # Shared empty store so export helpers accept a null registry.
        self.store = TimeSeriesStore()

    def bind(self, sim) -> "NullRegistry":
        return self

    @property
    def sim(self):
        return None

    def counter(self, name, help="", labelnames=()):
        return NULL_INSTRUMENT

    def gauge(self, name, help="", labelnames=()):
        return NULL_INSTRUMENT

    def histogram(self, name, help="", labelnames=()):
        return NULL_INSTRUMENT

    def instruments(self) -> list:
        return []

    def sample(self, now: float) -> None:
        return None

    def to_dicts(self) -> list:
        return []


#: Shared inactive registry; the default for every Simulator.
NULL_REGISTRY = NullRegistry()
