"""In-memory time-series storage for sampled telemetry.

A :class:`Series` is one labeled stream of ``(sim_time_ms, value)``
points; the :class:`TimeSeriesStore` keys series by ``(name, labels)``
in an insertion-ordered dict, so the set of series — and every export
derived from it — is fully determined by program order, never by hash
order.  Timestamps are simulated milliseconds stamped by the
:class:`~repro.telemetry.sampler.Sampler`; nothing here reads a wall
clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Series kinds (mirrors the Prometheus metric taxonomy we export).
COUNTER = "counter"
GAUGE = "gauge"


@dataclass
class Series:
    """One labeled time series of sampled values."""

    name: str
    kind: str                       # COUNTER or GAUGE
    #: Label pairs in labelnames order, e.g. (("node", "node0"),).
    labels: tuple = ()
    help: str = ""
    #: Sampled (sim_time_ms, value) points in sampling order.
    points: list = field(default_factory=list)

    @property
    def key(self) -> tuple:
        return (self.name, self.labels)

    def label_dict(self) -> dict:
        return dict(self.labels)

    def label_str(self) -> str:
        """Render labels as ``k=v;k2=v2`` (CSV / display form)."""
        return ";".join(f"{name}={value}" for name, value in self.labels)

    def last(self):
        """The most recent sampled value (None when never sampled)."""
        return self.points[-1][1] if self.points else None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": self.label_dict(),
            "help": self.help,
            "points": [[t, v] for t, v in self.points],
        }


class TimeSeriesStore:
    """Insertion-ordered collection of :class:`Series`."""

    def __init__(self):
        self._series: dict[tuple, Series] = {}

    def __len__(self) -> int:
        return len(self._series)

    def series(self, name: str, kind: str, labels: tuple = (),
               help: str = "") -> Series:
        """Get or create the series for ``(name, labels)``."""
        key = (name, labels)
        existing = self._series.get(key)
        if existing is None:
            existing = Series(name=name, kind=kind, labels=labels, help=help)
            self._series[key] = existing
        return existing

    def all_series(self) -> list:
        """Every series, in creation order."""
        return list(self._series.values())

    def to_dicts(self) -> list:
        """JSON-ready dicts, sorted by (name, labels) for canonical output."""
        return [series.to_dict()
                for series in sorted(self._series.values(), key=lambda s: s.key)]
