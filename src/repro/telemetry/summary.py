"""Timeline summarisation for the ``repro-metrics`` CLI.

Works on the exported dict form of series (see
:func:`repro.telemetry.export.load_series`), so the CLI can summarise a
file without re-running the simulation.
"""

from __future__ import annotations

from repro.metrics.stats import Histogram

#: Eight-level block characters for terminal sparklines.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def series_stats(series: dict) -> dict:
    """Distribution statistics of one series' sampled values."""
    values = [value for _t, value in series["points"]]
    histogram = Histogram()
    for value in values:
        histogram.record(float(value))
    times = [t for t, _value in series["points"]]
    return {
        "name": series["name"],
        "kind": series["kind"],
        "labels": dict(series.get("labels", {})),
        "samples": histogram.count,
        "t_first_ms": times[0] if times else None,
        "t_last_ms": times[-1] if times else None,
        "min": histogram.min,
        "max": histogram.max,
        "mean": histogram.mean,
        "p50": histogram.p50,
        "stddev": histogram.stddev,
        "last": values[-1] if values else None,
    }


def render_sparkline(series: dict, width: int = 60) -> str:
    """Resample a series into ``width`` buckets of block characters."""
    values = [float(value) for _t, value in series["points"]]
    if not values:
        return ""
    if len(values) > width:
        # Mean per bucket keeps bursts visible without aliasing on width.
        bucketed = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    low = min(values)
    span = max(values) - low
    if span <= 0.0:
        return SPARK_CHARS[0] * len(values)
    return "".join(
        SPARK_CHARS[min(len(SPARK_CHARS) - 1,
                        int((value - low) / span * len(SPARK_CHARS)))]
        for value in values)


def _by_node(series_list: list, name: str) -> dict:
    """node label -> series, sorted by node, for single-node-label series."""
    picked = [series for series in series_list if series["name"] == name]
    return {series["labels"].get("node", ""): series
            for series in sorted(picked,
                                 key=lambda s: s["labels"].get("node", ""))}


def utilization_summary(series_list: list) -> list:
    """Per-node utilization/queue/memory rows from the node gauges."""
    cpu = _by_node(series_list, "node_cpu_utilization")
    queue = _by_node(series_list, "node_cpu_queue_length")
    memory = _by_node(series_list, "node_memory_in_use_bytes")
    containers = _by_node(series_list, "node_warm_containers")
    rows = []
    for node in sorted(set(cpu) | set(queue) | set(memory)):
        row = {"node": node}
        if node in cpu:
            stats = series_stats(cpu[node])
            row["cpu_mean"] = stats["mean"]
            row["cpu_peak"] = stats["max"]
        if node in queue:
            stats = series_stats(queue[node])
            row["queue_mean"] = stats["mean"]
            row["queue_peak"] = stats["max"]
        if node in memory:
            row["memory_peak_bytes"] = series_stats(memory[node])["max"]
        if node in containers:
            row["warm_containers_last"] = containers[node]["points"][-1][1] \
                if containers[node]["points"] else None
        rows.append(row)
    return rows
