"""Rule-based SLO/anomaly detection over sampled timelines.

Each detector scans exported series (the dict form produced by
:meth:`TimeSeriesStore.to_dicts` / :func:`repro.telemetry.export.
load_series`) and reports :class:`Anomaly` windows in *simulated* time.
Detectors are deliberately simple threshold/baseline rules — the goal is
flagging the dynamics the paper argues about (invalidation storms under
write bursts, sustained run-queue buildup at hot nodes, hit-ratio
collapse under churn), not statistical novelty.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass


@dataclass(frozen=True)
class Anomaly:
    """One rule firing over a simulated-time window."""

    rule: str
    metric: str
    #: Label pairs identifying the offending series ((), when aggregated).
    labels: tuple
    start_ms: float
    end_ms: float
    detail: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "labels": dict(self.labels),
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "detail": self.detail,
        }


def _named(series_list: list, name: str) -> list:
    """Series with ``name``, normalized to dicts.

    Accepts either the dict form (``TimeSeriesStore.to_dicts`` /
    ``load_series``) or live :class:`~repro.telemetry.store.Series`
    objects, so in-process callers need not round-trip through export.
    """
    dicts = [series if isinstance(series, dict) else series.to_dict()
             for series in series_list]
    return [series for series in dicts if series["name"] == name]


def _label_key(series: dict) -> tuple:
    return tuple(sorted(series.get("labels", {}).items()))


def _interval_deltas(series_list: list) -> list:
    """Per-sampling-interval value deltas summed across series.

    Returns ``[(interval_end_ms, interval_start_ms, delta), ...]`` in
    time order.  Series that start mid-run (e.g. agents created by
    churn) simply contribute nothing before their first sample.
    """
    totals: dict = {}
    starts: dict = {}
    for series in series_list:
        points = series["points"]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            totals[t1] = totals.get(t1, 0.0) + (v1 - v0)
            prev = starts.get(t1)
            if prev is None or t0 < prev:
                starts[t1] = t0
    return [(t1, starts[t1], totals[t1]) for t1 in sorted(totals)]


def _flag_runs(intervals: list, flagged, min_samples: int) -> list:
    """Group consecutive flagged intervals into (start, end, members)."""
    runs = []
    current = []
    for interval in intervals:
        if flagged(interval):
            current.append(interval)
        else:
            if len(current) >= min_samples:
                runs.append(current)
            current = []
    if len(current) >= min_samples:
        runs.append(current)
    return [(run[0][1], run[-1][0], run) for run in runs]


# -- detectors ---------------------------------------------------------

def detect_invalidation_storm(series_list: list,
                              metric: str = "cache_invalidations_sent_total",
                              factor: float = 4.0,
                              min_delta: float = 4.0,
                              min_samples: int = 2) -> list:
    """Flag windows where cluster-wide invalidation rate spikes.

    The per-interval invalidation count (summed over all nodes/schemes)
    is compared against ``max(min_delta, factor * median_interval)``;
    ``min_samples`` consecutive hot intervals form a storm window.
    """
    intervals = _interval_deltas(_named(series_list, metric))
    if not intervals:
        return []
    baseline = statistics.median(delta for _t1, _t0, delta in intervals)
    threshold = max(min_delta, factor * baseline)
    anomalies = []
    for start, end, run in _flag_runs(
            intervals, lambda iv: iv[2] >= threshold, min_samples):
        total = sum(delta for _t1, _t0, delta in run)
        peak = max(delta for _t1, _t0, delta in run)
        anomalies.append(Anomaly(
            rule="invalidation_storm", metric=metric, labels=(),
            start_ms=start, end_ms=end,
            detail=(f"{total:.0f} invalidations in {end - start:.0f}ms "
                    f"(peak {peak:.0f}/interval, threshold "
                    f"{threshold:.1f}, baseline median {baseline:.1f})")))
    return anomalies


def detect_cpu_queue_buildup(series_list: list,
                             metric: str = "node_cpu_queue_length",
                             min_depth: float = 4.0,
                             min_duration_ms: float = 500.0) -> list:
    """Flag nodes whose CPU run queue stays deep for a sustained window."""
    anomalies = []
    for series in sorted(_named(series_list, metric), key=_label_key):
        points = series["points"]
        runs = []
        current = []
        for t_ms, value in points:
            if value >= min_depth:
                current.append((t_ms, value))
            else:
                if current:
                    runs.append(current)
                current = []
        if current:
            runs.append(current)
        for run in runs:
            start, end = run[0][0], run[-1][0]
            if end - start < min_duration_ms:
                continue
            peak = max(value for _t, value in run)
            anomalies.append(Anomaly(
                rule="cpu_queue_buildup", metric=metric,
                labels=_label_key(series), start_ms=start, end_ms=end,
                detail=(f"run queue >= {min_depth:.0f} for "
                        f"{end - start:.0f}ms (peak depth {peak:.0f})")))
    return anomalies


def detect_hit_ratio_collapse(series_list: list,
                              reads_metric: str = "cache_reads_total",
                              hits_metric: str = "cache_read_hits_total",
                              collapse_factor: float = 0.5,
                              min_reads: float = 10.0,
                              min_samples: int = 2) -> list:
    """Flag windows where a scheme's windowed hit ratio collapses.

    The ratio is computed from per-interval *deltas* of the read/hit
    counters (never the instantaneous cumulative ratio, which a long
    healthy prefix would pin near its historical value).  Intervals with
    fewer than ``min_reads`` reads are ignored as noise.
    """
    reads_by_labels = {_label_key(s): s for s in
                       _named(series_list, reads_metric)}
    hits_by_labels = {_label_key(s): s for s in
                      _named(series_list, hits_metric)}
    anomalies = []
    for labels in sorted(reads_by_labels):
        hits_series = hits_by_labels.get(labels)
        if hits_series is None:
            continue
        read_deltas = _interval_deltas([reads_by_labels[labels]])
        hit_deltas = {t1: delta for t1, _t0, delta in
                      _interval_deltas([hits_series])}
        ratios = []
        for t1, t0, read_delta in read_deltas:
            if read_delta < min_reads:
                continue
            hit_delta = hit_deltas.get(t1, 0.0)
            ratios.append((t1, t0, hit_delta / read_delta))
        if len(ratios) < 2 * min_samples:
            continue
        baseline = statistics.median(ratio for _t1, _t0, ratio in ratios)
        if baseline <= 0.0:
            continue
        threshold = collapse_factor * baseline
        for start, end, run in _flag_runs(
                ratios, lambda iv: iv[2] < threshold, min_samples):
            low = min(ratio for _t1, _t0, ratio in run)
            anomalies.append(Anomaly(
                rule="hit_ratio_collapse", metric=reads_metric,
                labels=labels, start_ms=start, end_ms=end,
                detail=(f"windowed hit ratio fell to {low:.2f} "
                        f"(baseline median {baseline:.2f}, threshold "
                        f"{threshold:.2f})")))
    return anomalies


def detect_slo_latency(series_list: list, slo_ms: float,
                       metric: str = "faas_request_latency_ms",
                       min_requests: float = 5.0,
                       min_samples: int = 2) -> list:
    """Flag windows where the windowed mean request latency breaks SLO."""
    counts = {_label_key(s): s for s in _named(series_list,
                                               f"{metric}_count")}
    sums = {_label_key(s): s for s in _named(series_list, f"{metric}_sum")}
    anomalies = []
    for labels in sorted(counts):
        sum_series = sums.get(labels)
        if sum_series is None:
            continue
        count_deltas = _interval_deltas([counts[labels]])
        sum_deltas = {t1: delta for t1, _t0, delta in
                      _interval_deltas([sum_series])}
        means = []
        for t1, t0, count_delta in count_deltas:
            if count_delta < min_requests:
                continue
            means.append((t1, t0, sum_deltas.get(t1, 0.0) / count_delta))
        for start, end, run in _flag_runs(
                means, lambda iv: iv[2] > slo_ms, min_samples):
            worst = max(mean for _t1, _t0, mean in run)
            anomalies.append(Anomaly(
                rule="slo_latency", metric=metric, labels=labels,
                start_ms=start, end_ms=end,
                detail=(f"windowed mean latency up to {worst:.1f}ms "
                        f"exceeds SLO {slo_ms:.1f}ms")))
    return anomalies


def detect_anomalies(series_list: list, slo_latency_ms=None, **kwargs) -> list:
    """Run every detector; return anomalies sorted by window start.

    ``kwargs`` are routed to detectors by prefix, e.g.
    ``storm_min_delta=2`` or ``queue_min_depth=8``.
    """
    def picked(prefix):
        return {key[len(prefix):]: value for key, value in kwargs.items()
                if key.startswith(prefix)}

    anomalies = []
    anomalies.extend(detect_invalidation_storm(series_list,
                                               **picked("storm_")))
    anomalies.extend(detect_cpu_queue_buildup(series_list,
                                              **picked("queue_")))
    anomalies.extend(detect_hit_ratio_collapse(series_list,
                                               **picked("hit_")))
    if slo_latency_ms is not None:
        anomalies.extend(detect_slo_latency(series_list, slo_latency_ms,
                                            **picked("slo_")))
    return sorted(anomalies,
                  key=lambda a: (a.start_ms, a.rule, a.metric, a.labels))
