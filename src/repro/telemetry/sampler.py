"""Fixed-interval snapshotting of all registered instruments.

The :class:`Sampler` is an ordinary sim process: it snapshots every
instrument in the simulator's registry at ``t = 0, interval, 2*interval,
...`` on the *simulated* clock, then sleeps.  Because it is spawned as a
daemon it never blocks ``run_until_complete`` from finishing, but note
that a running sampler keeps the event heap non-empty forever — drive
sampled simulations with bounded ``run(until=...)`` /
``run_until_complete(limit=...)`` calls (as :class:`repro.session.
Session` and the experiment runners do), or call :meth:`stop` before an
unbounded ``run()``.
"""

from __future__ import annotations

from repro.telemetry.registry import NULL_REGISTRY


class Sampler:
    """Periodic sim-process that drives ``registry.sample(sim.now)``."""

    def __init__(self, sim, interval_ms: float = 100.0):
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be > 0, got {interval_ms}")
        self.sim = sim
        self.interval_ms = interval_ms
        self._process = None
        self._stopped = False

    @property
    def registry(self):
        return getattr(self.sim, "metrics", NULL_REGISTRY)

    @property
    def running(self) -> bool:
        return self._process is not None and not self._process.triggered

    def start(self) -> "Sampler":
        """Spawn the sampling process (no-op if inactive or started)."""
        if not self.registry.active or self._process is not None:
            return self
        self._stopped = False
        self._process = self.sim.spawn(
            self._run(), name="telemetry-sampler", daemon=True)
        return self

    def stop(self) -> None:
        """Stop sampling after the current instant (idempotent)."""
        self._stopped = True

    def _run(self):
        registry = self.registry
        while not self._stopped:
            registry.sample(self.sim.now)
            yield self.sim.timeout(self.interval_ms)
        self._process = None
