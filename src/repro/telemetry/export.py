"""Serialize sampled time series: JSONL, CSV, Prometheus text format.

All exporters are byte-deterministic: series are emitted in canonical
``(name, labels)`` order, JSON objects use ``sort_keys``, and every
timestamp is simulated milliseconds.  The writers are plain functions —
not sim processes — so file I/O here does not violate SIM02.
"""

from __future__ import annotations

import csv
import io
import json


def _series_dicts(source) -> list:
    """Normalize a registry, store, or iterable of dicts to sorted dicts."""
    to_dicts = getattr(source, "to_dicts", None)
    if to_dicts is not None:
        return to_dicts()
    return sorted(source, key=_dict_key)


def _dict_key(series: dict) -> tuple:
    return (series["name"], tuple(sorted(series.get("labels", {}).items())))


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


# -- JSONL -------------------------------------------------------------

def jsonl_dumps(source) -> str:
    """One canonical JSON object per series, one series per line."""
    lines = [json.dumps(series, sort_keys=True, separators=(",", ":"))
             for series in _series_dicts(source)]
    return "".join(line + "\n" for line in lines)


def export_jsonl(source, path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(jsonl_dumps(source))
    return path


# -- CSV ---------------------------------------------------------------

CSV_HEADER = ("name", "kind", "labels", "t_ms", "value")


def csv_dumps(source) -> str:
    """Long-form CSV: one row per sampled point."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(CSV_HEADER)
    for series in _series_dicts(source):
        labels = ";".join(f"{name}={value}"
                          for name, value in sorted(series["labels"].items()))
        for t_ms, value in series["points"]:
            writer.writerow([series["name"], series["kind"], labels,
                             _fmt_value(float(t_ms)), _fmt_value(value)])
    return buffer.getvalue()


def export_csv(source, path: str) -> str:
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(csv_dumps(source))
    return path


# -- Prometheus text format --------------------------------------------

def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _prom_label_str(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(str(value))}"'
                    for name, value in sorted(labels.items()))
    return "{" + body + "}"


def prometheus_dumps(source) -> str:
    """Prometheus exposition text with explicit millisecond timestamps.

    Each sampled point becomes one exposition line stamped with its
    simulated-clock timestamp, so the full timeline round-trips through
    any Prometheus-format tooling.
    """
    lines: list = []
    seen_families: dict = {}
    for series in _series_dicts(source):
        name = series["name"]
        if name not in seen_families:
            seen_families[name] = None
            if series.get("help"):
                lines.append(f"# HELP {name} {series['help']}")
            lines.append(f"# TYPE {name} {series['kind']}")
        label_str = _prom_label_str(series["labels"])
        for t_ms, value in series["points"]:
            lines.append(f"{name}{label_str} {_fmt_value(value)} "
                         f"{_fmt_value(float(t_ms))}")
    return "".join(line + "\n" for line in lines)


def export_prometheus(source, path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_dumps(source))
    return path


# -- loading (for the CLI) ---------------------------------------------

def _load_jsonl(text: str) -> list:
    series = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            series.append(json.loads(line))
    return series


def _load_csv(text: str) -> list:
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header is None or tuple(header) != CSV_HEADER:
        raise ValueError(f"not a telemetry CSV (header {header!r})")
    by_key: dict = {}
    for name, kind, label_str, t_ms, value in reader:
        labels = {}
        if label_str:
            for pair in label_str.split(";"):
                label_name, _, label_value = pair.partition("=")
                labels[label_name] = label_value
        key = (name, tuple(sorted(labels.items())))
        series = by_key.get(key)
        if series is None:
            series = {"name": name, "kind": kind, "labels": labels,
                      "help": "", "points": []}
            by_key[key] = series
        series["points"].append([float(t_ms), float(value)])
    return list(by_key.values())


def load_series(path: str) -> list:
    """Load an exported timeline (JSONL or CSV, auto-detected)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        return []
    if stripped.startswith("{"):
        return _load_jsonl(text)
    if stripped.startswith("name,"):
        return _load_csv(text)
    raise ValueError(
        f"{path}: unrecognized timeline format (expected JSONL or CSV; "
        f"the Prometheus text format is export-only)")
