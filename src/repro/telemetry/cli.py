"""Command-line entry point: ``python -m repro.telemetry`` / ``repro-metrics``.

Usage::

    repro-metrics out.jsonl                    # overview + utilization
    repro-metrics out.jsonl --metric NAME      # one metric's timelines
    repro-metrics out.jsonl --anomalies        # SLO/anomaly report
    repro-metrics out.jsonl --format=json      # machine-readable summary
    repro-metrics out.jsonl --since 500 --until 1500   # sim-time window

Accepts JSONL and CSV timeline exports (auto-detected).  All times shown
are simulated milliseconds.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.cli_common import (
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_USAGE,
    common_parent,
    in_window,
    output_stream,
)
from repro.telemetry.anomaly import detect_anomalies
from repro.telemetry.export import load_series
from repro.telemetry.summary import (
    render_sparkline,
    series_stats,
    utilization_summary,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-metrics",
        description=("Summarize a repro.telemetry timeline export (JSONL "
                     "or CSV): per-metric timelines, a per-node "
                     "utilization summary, and a rule-based SLO/anomaly "
                     "report over simulated time."),
        parents=[common_parent(formats=("text", "json"), out=True,
                               window=True)],
    )
    parser.add_argument("timeline", type=Path,
                        help="timeline file written by the telemetry "
                             "exporters (JSONL or CSV)")
    parser.add_argument("--metric", default=None,
                        help="show only series of this metric name")
    parser.add_argument("--anomalies", action="store_true",
                        help="print only the SLO/anomaly report")
    parser.add_argument("--slo-latency-ms", type=float, default=None,
                        help="also flag windows whose mean request "
                             "latency exceeds this SLO")
    return parser


def _label_str(labels: dict) -> str:
    return ";".join(f"{name}={value}"
                    for name, value in sorted(labels.items()))


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _print_series(series_list: list, out) -> None:
    for series in series_list:
        stats = series_stats(series)
        labels = _label_str(stats["labels"])
        title = f"{stats['name']}{{{labels}}}" if labels else stats["name"]
        print(f"{title}", file=out)
        print(f"  kind={stats['kind']} samples={stats['samples']} "
              f"window=[{_fmt(stats['t_first_ms'])}, "
              f"{_fmt(stats['t_last_ms'])}]ms", file=out)
        print(f"  min={_fmt(stats['min'])} mean={_fmt(stats['mean'])} "
              f"p50={_fmt(stats['p50'])} max={_fmt(stats['max'])} "
              f"stddev={_fmt(stats['stddev'])} last={_fmt(stats['last'])}",
              file=out)
        spark = render_sparkline(series)
        if spark:
            print(f"  {spark}", file=out)


def _print_utilization(series_list: list, out) -> None:
    rows = utilization_summary(series_list)
    if not rows:
        return
    print("per-node utilization:", file=out)
    print(f"  {'node':<10} {'cpu mean':>9} {'cpu peak':>9} "
          f"{'queue mean':>11} {'queue peak':>11} {'mem peak':>12}",
          file=out)
    for row in rows:
        print(f"  {row['node']:<10} {_fmt(row.get('cpu_mean')):>9} "
              f"{_fmt(row.get('cpu_peak')):>9} "
              f"{_fmt(row.get('queue_mean')):>11} "
              f"{_fmt(row.get('queue_peak')):>11} "
              f"{_fmt(row.get('memory_peak_bytes')):>12}", file=out)


def _print_anomalies(anomalies: list, out) -> None:
    if not anomalies:
        print("anomalies: none detected", file=out)
        return
    print(f"anomalies: {len(anomalies)} window(s)", file=out)
    for anomaly in anomalies:
        labels = _label_str(dict(anomaly.labels))
        where = f" [{labels}]" if labels else ""
        print(f"  {anomaly.rule}{where} "
              f"t=[{anomaly.start_ms:.0f}, {anomaly.end_ms:.0f}]ms: "
              f"{anomaly.detail}", file=out)


def main(argv: Optional[list] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with output_stream(args.out, out) as out:
            return _run(args, out)
    except OSError as exc:
        if args.out is None:
            raise
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return EXIT_USAGE


def _run(args, out) -> int:
    if not args.timeline.exists():
        print(f"error: no such timeline file: {args.timeline}", file=out)
        return EXIT_USAGE
    try:
        series_list = load_series(str(args.timeline))
    except (ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {args.timeline} is not a telemetry export: {exc}",
              file=out)
        return EXIT_USAGE

    if args.metric is not None:
        series_list = [series for series in series_list
                       if series["name"] == args.metric]

    if args.since is not None or args.until is not None:
        windowed = []
        for series in series_list:
            points = [point for point in series["points"]
                      if in_window(point[0], args.since, args.until)]
            if points:
                windowed.append({**series, "points": points})
        series_list = windowed

    anomalies = detect_anomalies(series_list,
                                 slo_latency_ms=args.slo_latency_ms)

    try:
        return _render(args, series_list, anomalies, out)
    except BrokenPipeError:
        # Piped into `head`/`grep -m` which closed early; swap stdout for
        # /dev/null so interpreter shutdown doesn't print a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _render(args, series_list: list, anomalies: list, out) -> int:
    if args.format == "json":
        payload = {
            "series": [series_stats(series) for series in series_list],
            "utilization": utilization_summary(series_list),
            "anomalies": [anomaly.to_dict() for anomaly in anomalies],
        }
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
        return EXIT_OK

    if args.anomalies:
        _print_anomalies(anomalies, out)
        return EXIT_OK

    if args.metric is not None:
        if not series_list:
            print(f"no series named {args.metric!r}", file=out)
            return EXIT_FAILURE
        _print_series(series_list, out)
        return EXIT_OK

    names = {}
    total_points = 0
    for series in series_list:
        names[series["name"]] = names.get(series["name"], 0) + 1
        total_points += len(series["points"])
    print(f"timeline: {args.timeline}", file=out)
    print(f"  {len(series_list)} series / {len(names)} metrics / "
          f"{total_points} points", file=out)
    for name in sorted(names):
        print(f"  {name:<40} x{names[name]}", file=out)
    print("", file=out)
    _print_utilization(series_list, out)
    print("", file=out)
    _print_anomalies(anomalies, out)
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
