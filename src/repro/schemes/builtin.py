"""Builders for the schemes evaluated in the paper.

Each builder has the uniform signature ``builder(cluster, coord, app,
**cfg)`` and ignores configuration keys meant for other schemes (the
runner passes one flat keyword set to whichever scheme is selected).

Shared configuration keys:

``capacity``
    Per-instance cache capacity in bytes (None = scheme default).
``ofc_shared_capacity``
    Override for OFC's per-node shared budget (Figure 14 sweep).
``read_only_annotations``
    Faa$T only: derive the profile's read-only key set (Figure 13).
``num_memory_nodes``
    Apta only: memory-tier width (defaults to the cluster size).
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import MB
from repro.schemes import register_scheme


@register_scheme("nocache")
def build_nocache(cluster, coord, app, **_):
    """Every access goes straight to global storage (paper's baseline)."""
    from repro.caching import DirectStorage

    return DirectStorage(cluster)


@register_scheme("ofc", shared=True)
def build_ofc(cluster, coord, app, *, capacity=None,
              ofc_shared_capacity=None, **_):
    """One RAMCloud-style cache per node, shared by all applications."""
    from repro.caching import OfcSystem

    budget = ofc_shared_capacity or capacity or 64 * MB
    return OfcSystem(cluster, capacity_per_node=budget)


@register_scheme("faast")
def build_faast(cluster, coord, app, *, capacity=None,
                read_only_annotations=False, **_):
    """Per-app Faa$T instance with version-check coherence."""
    from repro.caching import FaastSystem

    read_only = set()
    if read_only_annotations:
        from repro.workloads import ALL_PROFILES
        from repro.workloads.distributions import is_read_only
        from repro.workloads.profiles import entity_key

        profile = ALL_PROFILES[app]
        read_only = {
            entity_key(app, e, i)
            for e in range(profile.entities)
            for i in range(profile.items_per_entity)
            if is_read_only(entity_key(app, e, i))
        }
    return FaastSystem(
        cluster, app=app,
        capacity_per_instance=(capacity or 64 * MB),
        read_only_keys=read_only,
    )


def _memory_tier_storage(cluster, **_):
    """Prepare hook: one memory-node storage tier shared by all apps."""
    from repro.storage import GlobalStorage

    # Memory-node tier: storage served at internode latency.
    mem_latency = replace(
        cluster.config.latency,
        storage_rtt=cluster.config.latency.internode_rtt,
        storage_bytes_per_ms=cluster.config.latency.serialization_bytes_per_ms,
    )
    return {"storage": GlobalStorage(cluster.sim, mem_latency, name="memtier")}


def _preload_storage_tier(scheme, profile):
    from repro.workloads.profiles import preload_storage

    preload_storage(scheme.storage, profile)


@register_scheme("concord", scheduler="cas")
@register_scheme("concord-nocas")
def build_concord(cluster, coord, app, *, capacity=None, storage=None,
                  estate_writes=True, parallel_invalidations=True,
                  shards=None, replication=1, recovery_lease_ms=None, **_):
    """Concord's distributed-coherence cache (CAS scheduling optional).

    ``shards=N`` partitions the directory role over N consistent-hash
    shards; ``replication=R`` keeps R-deep replica chains per shard
    (leader + R-1 async followers).  ``recovery_lease_ms`` bounds how
    long a recovering directory blocks before falling back to storage.
    """
    from repro.core import ConcordSystem

    return ConcordSystem(
        cluster, app=app, coord=coord, storage=storage,
        capacity_override=capacity,
        estate_writes=estate_writes,
        parallel_invalidations=parallel_invalidations,
        shards=shards, replication=replication,
        recovery_lease_ms=recovery_lease_ms,
    )


@register_scheme("concord-mem", scheduler="cas",
                 prepare=_memory_tier_storage,
                 preload=_preload_storage_tier)
def build_concord_mem(cluster, coord, app, *, capacity=None, storage=None,
                      **_):
    """Concord backed by a memory-node tier instead of blob storage."""
    from repro.core import ConcordSystem

    return ConcordSystem(
        cluster, app=app, coord=coord, storage=storage,
        capacity_override=capacity,
    )


def _preload_working_set(scheme, profile):
    from repro.workloads.profiles import working_set

    scheme.preload(working_set(profile))


def _build_apta(cluster, app, capacity, num_memory_nodes, backing):
    from repro.apta import AptaSystem, make_memory_tier

    tier = make_memory_tier(
        cluster, num_memory_nodes or len(cluster.node_ids))
    return AptaSystem(
        cluster, tier, app=app, backing=backing,
        capacity_per_node=(capacity or 64 * MB),
    )


@register_scheme("apta-az", scheduler="apta")
def build_apta_az(cluster, coord, app, *, capacity=None,
                  num_memory_nodes=None, **_):
    """Apta with Azure blob storage backing the memory tier."""
    return _build_apta(cluster, app, capacity, num_memory_nodes,
                       backing=cluster.storage)


@register_scheme("apta-mem", scheduler="apta",
                 preload=_preload_working_set)
def build_apta_mem(cluster, coord, app, *, capacity=None,
                   num_memory_nodes=None, **_):
    """Apta with the memory tier as the terminal store."""
    return _build_apta(cluster, app, capacity, num_memory_nodes,
                       backing=None)
