"""Vector clocks for the causally consistent scheme.

A :class:`VectorClock` maps node ids to per-node write counters and
captures the happens-before partial order: clock ``a`` happened before
``b`` iff ``b`` dominates ``a`` componentwise and differs somewhere.
Clocks here are *immutable* — every operation returns a new clock — so
they can ride RPC metadata, live in cache entries, and key verification
histories without defensive copies.

Determinism: the internal mapping is a plain dict, but every externally
visible ordering (``items``, ``as_tuple``, ``repr``) is sorted by node
id, so no output ever depends on insertion or hash order.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple

__all__ = ["VectorClock", "ZERO"]


class VectorClock:
    """An immutable node-id -> counter map under the pointwise order."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Optional[Mapping[str, int]] = None):
        # Zero components are dropped so logically equal clocks compare
        # equal regardless of which nodes they have ever mentioned.
        self._clock = ({node: count for node, count in clock.items()
                        if count > 0} if clock else {})

    # -- inspection -----------------------------------------------------
    def get(self, node: str) -> int:
        return self._clock.get(node, 0)

    def items(self) -> Tuple[Tuple[str, int], ...]:
        """The non-zero components, sorted by node id."""
        return tuple(sorted(self._clock.items()))

    def as_tuple(self) -> Tuple[Tuple[str, int], ...]:
        """Canonical hashable form (sorted items) for fingerprints."""
        return self.items()

    def nodes(self) -> Tuple[str, ...]:
        """Node ids with a non-zero component, sorted."""
        return tuple(sorted(self._clock))

    @property
    def total(self) -> int:
        """Sum of all components (a Lamport-style scalar bound)."""
        return sum(self._clock.values())

    def __bool__(self) -> bool:
        return bool(self._clock)

    def __len__(self) -> int:
        return len(self._clock)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._clock == other._clock

    def __hash__(self) -> int:
        return hash(self.items())

    def __repr__(self) -> str:
        inner = ", ".join(f"{node}:{count}"
                          for node, count in self.items())
        return f"VectorClock({{{inner}}})"

    # -- algebra --------------------------------------------------------
    def increment(self, node: str) -> "VectorClock":
        """A new clock with ``node``'s component advanced by one."""
        merged = dict(self._clock)
        merged[node] = merged.get(node, 0) + 1
        return VectorClock(merged)

    def advance(self, node: str, count: int) -> "VectorClock":
        """A new clock whose ``node`` component is at least ``count``."""
        if count <= self.get(node):
            return self
        merged = dict(self._clock)
        merged[node] = count
        return VectorClock(merged)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """The pointwise maximum (least upper bound) of the two clocks."""
        if not other._clock:
            return self
        if not self._clock:
            return other
        merged = dict(self._clock)
        for node, count in other._clock.items():
            if count > merged.get(node, 0):
                merged[node] = count
        return VectorClock(merged)

    # -- order ----------------------------------------------------------
    def dominates(self, other: "VectorClock") -> bool:
        """Pointwise ``self >= other`` (reflexive)."""
        for node, count in other._clock.items():
            if self._clock.get(node, 0) < count:
                return False
        return True

    def precedes(self, other: "VectorClock") -> bool:
        """Strict happens-before: ``self < other`` in the partial order."""
        return other.dominates(self) and self._clock != other._clock

    def concurrent(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other (and they differ)."""
        return not self.dominates(other) and not other.dominates(self)

    def compare(self, other: "VectorClock") -> Optional[int]:
        """-1 / 0 / +1 for before / equal / after; None when concurrent."""
        forward = self.dominates(other)
        backward = other.dominates(self)
        if forward and backward:
            return 0
        if backward:
            return -1
        if forward:
            return 1
        return None

    # -- construction helpers -------------------------------------------
    @classmethod
    def of(cls, pairs: Iterable[Tuple[str, int]]) -> "VectorClock":
        """Build from ``(node, count)`` pairs (later pairs win)."""
        return cls(dict(pairs))


#: The empty clock (bottom of the partial order); share it freely.
ZERO = VectorClock()
