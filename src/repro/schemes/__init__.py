"""Scheme registry: one place where caching schemes are named and built.

Historically each experiment carried its own ``if config.scheme == ...``
chain; adding a scheme meant editing every chain.  The registry inverts
that: a scheme module registers a builder under a name, and experiments,
benchmarks and the :class:`repro.session.Session` facade all construct
through :func:`build_scheme` / :func:`build_scheme_map`.

A builder is a callable ``builder(cluster, coord, app, **cfg)`` returning
a :class:`~repro.caching.base.StorageAPI`.  The decorator records the
scheme's scheduler preference and whether one instance is shared across
applications; optional ``prepare``/``preload`` hooks cover per-run setup
(Concord's memory tier) and working-set priming (Apta's terminal store).

The paper's schemes live in :mod:`repro.schemes.builtin` and the
production cache-consistency families (write-through, write-behind,
read-through TTL, causal) in :mod:`repro.schemes.zoo`; both are
imported at the bottom of this module for their registration side
effects.  :func:`available` returns the ``(name, description)``
catalogue CLIs print; :exc:`UnknownSchemeError` lists it too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.caching.base import StorageAPI
    from repro.cluster import Cluster
    from repro.coord import CoordinationService

__all__ = [
    "SchemeSpec",
    "UnknownSchemeError",
    "available",
    "available_names",
    "build_scheme",
    "build_scheme_map",
    "make_scheduler",
    "register_scheme",
    "registered_schemes",
    "scheme_spec",
]


class UnknownSchemeError(ValueError):
    """Raised when a scheme name has no registered builder."""


@dataclass(frozen=True)
class SchemeSpec:
    """Everything the harness needs to know about one registered scheme."""

    name: str
    builder: Callable
    #: One-line human description printed by ``available()`` catalogues.
    description: str = ""
    #: Which FaaS scheduler the scheme wants: "locality", "cas" or "apta".
    scheduler: str = "locality"
    #: True when one instance serves every application (OFC's shared cache).
    shared: bool = False
    #: Optional once-per-run hook ``prepare(cluster, **cfg) -> dict`` whose
    #: result is merged into the builder's keyword arguments (e.g. Concord's
    #: memory-node storage tier, built once and handed to every instance).
    prepare: Optional[Callable] = None
    #: Optional ``preload(scheme, profile)`` hook priming a scheme that is
    #: itself the terminal store (Apta's memory tier, Concord-mem's tier).
    preload: Optional[Callable] = None


_REGISTRY: dict[str, SchemeSpec] = {}


def register_scheme(
    name: str,
    *,
    description: str = "",
    scheduler: str = "locality",
    shared: bool = False,
    prepare: Optional[Callable] = None,
    preload: Optional[Callable] = None,
) -> Callable:
    """Register ``builder`` under ``name`` (decorator; stackable).

    Returns the builder unchanged so one function can serve several
    names (``concord`` / ``concord-nocas`` differ only in scheduler).
    ``description`` is the one-liner :func:`available` catalogues show;
    it falls back to the builder's docstring first line.
    """

    def decorate(builder: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"scheme {name!r} is already registered")
        doc = description
        if not doc and builder.__doc__:
            doc = builder.__doc__.strip().splitlines()[0]
        _REGISTRY[name] = SchemeSpec(
            name=name, builder=builder, description=doc,
            scheduler=scheduler, shared=shared, prepare=prepare,
            preload=preload,
        )
        return builder

    return decorate


def registered_schemes() -> tuple:
    """All registered scheme names, in registration order."""
    return tuple(_REGISTRY)


def available() -> tuple:
    """Sorted ``(name, description)`` pairs — the user-facing catalogue.

    This is the supported way for experiments, CLIs and docs to discover
    what ``scheme=`` accepts; constructing scheme objects directly
    (bypassing :func:`build_scheme`) is not.  Use
    :func:`available_names` when only the names matter.
    """
    return tuple((name, _REGISTRY[name].description)
                 for name in sorted(_REGISTRY))


def available_names() -> tuple:
    """All registered scheme names, sorted."""
    return tuple(sorted(_REGISTRY))


def scheme_spec(name: str) -> SchemeSpec:
    """Look up a scheme; unknown names list what *is* registered."""
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownSchemeError(
            f"unknown scheme {name!r}; registered schemes: {known}")
    return spec


def build_scheme(
    name: str,
    cluster: "Cluster",
    coord: Optional["CoordinationService"] = None,
    app: Optional[str] = None,
    **cfg,
) -> "StorageAPI":
    """Build one instance of scheme ``name`` for ``app``.

    Any ``prepare`` hook runs first and its result augments ``cfg`` —
    callers building several instances that must share prepared state
    (the mixed-workload runner) should use :func:`build_scheme_map`.
    """
    spec = scheme_spec(name)
    if spec.prepare is not None:
        cfg = {**cfg, **spec.prepare(cluster, **cfg)}
    return spec.builder(cluster, coord, app, **cfg)


def build_scheme_map(
    name: str,
    cluster: "Cluster",
    coord: Optional["CoordinationService"],
    apps,
    **cfg,
) -> dict:
    """Build the per-app ``{app_name: StorageAPI}`` map for one run.

    Shared schemes get a single instance mapped under every app name;
    per-app schemes get one instance each.  ``prepare`` runs exactly once.
    """
    spec = scheme_spec(name)
    if spec.prepare is not None:
        cfg = {**cfg, **spec.prepare(cluster, **cfg)}
    if spec.shared:
        instance = spec.builder(cluster, coord, None, **cfg)
        return {app: instance for app in apps}
    return {app: spec.builder(cluster, coord, app, **cfg) for app in apps}


def make_scheduler(name: str, schemes: dict):
    """Instantiate the FaaS scheduler the scheme registered for."""
    kind = scheme_spec(name).scheduler
    if kind == "cas":
        from repro.faas import CasScheduler

        return CasScheduler()
    if kind == "apta":
        from repro.apta import AptaScheduler

        return AptaScheduler(schemes)
    from repro.faas import LocalityScheduler

    return LocalityScheduler()


# Import for registration side effects (populates _REGISTRY).
from repro.schemes import builtin as _builtin  # noqa: E402,F401
from repro.schemes import zoo as _zoo  # noqa: E402,F401
