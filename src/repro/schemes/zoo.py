"""The scheme zoo: classic production cache-consistency families.

The paper races its own protocol against the baselines it was built to
beat; this module adds the families a production cache tier actually
ships, each as a first-class registry scheme so every experiment can
sweep them:

``write-through``
    Per-node LRU; writes go to storage synchronously, then best-effort
    invalidations fan out to peers.  Eventual consistency (a dropped
    invalidation leaves a stale copy until eviction); zero crash loss.

``write-behind``
    Writes are acknowledged from a bounded per-node dirty buffer and
    made durable by a flush daemon.  Fast writes, bounded buffer (full
    buffer back-pressures the writer through a synchronous flush), and
    explicit loss-on-crash accounting: dirty entries that die with the
    node are counted (``cache_dirty_lost_total``) and flight-recorded
    (``cache.flush.lost``).

``read-through-ttl``
    Cache-aside with a freshness lease: a hit is served only while its
    fetch is younger than ``ttl_ms``; writes go to storage and delete
    the local copy.  No cross-node traffic at all — staleness is
    bounded by the TTL instead (checked by
    :func:`repro.verify.causal.check_bounded_staleness`).

``causal``
    Causally consistent cache à la CausalMesh: writes are tagged with
    vector clocks piggybacked on RPC metadata, sessions (one per
    function, the serverless "client") carry their causal past across
    node migrations, and a read either proves local state dominates the
    session's clock, pulls the gap from the lagging origin
    (``causal.sync``), or falls back to durable storage.  Per-key
    session guarantees (read-your-writes, monotonic reads) are
    unconditional — per-key versions are anchored in storage's total
    order; the vector-clock gate adds cross-key transitive causality
    and is best-effort under crashes (a dead origin's unreplicated
    writes survive only in storage).

All four compose with the fault injector (crash listeners clear dead
state, ``restart_instance`` re-admits a node), with regions (latency is
taken from the fabric/storage topology), and emit the established
telemetry families plus the ``cache.flush.*`` / ``cache.ttl.*`` /
``causal.*`` flight-recorder events.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from repro.caching.base import (
    CacheEntry,
    LruCache,
    StorageAPI,
    VALID,
    register_cache_gauges,
    register_scheme_metrics,
)
from repro.config import MB
from repro.coord.service import ping_handler
from repro.metrics import AccessStats, OpKind
from repro.net.rpc import (
    DEFAULT_RPC_TIMEOUT_MS,
    INHERIT,
    Endpoint,
    Reply,
    RpcTimeout,
)
from repro.net.sizes import sizeof
from repro.obs.events import (
    CACHE_FLUSH_ENQUEUE,
    CACHE_FLUSH_LOST,
    CACHE_FLUSH_WRITE,
    CACHE_INVALIDATE,
    CACHE_TTL_EXPIRE,
    CAUSAL_MIGRATE,
    CAUSAL_SYNC,
    CAUSAL_WRITE,
    INV_SEND,
)
from repro.schemes import register_scheme
from repro.schemes.vclock import ZERO, VectorClock
from repro.sim.errors import Interrupt
from repro.verify.causal import (
    CausalOp,
    check_bounded_staleness,
    check_session_guarantees,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster

#: Wire bytes one vector-clock component costs (node id + counter).
VC_COMPONENT_BYTES = 12


def _vc_bytes(vc: VectorClock) -> int:
    return VC_COMPONENT_BYTES * len(vc)


class _ZooInstance:
    """Shared per-node plumbing: one cache + one RPC endpoint."""

    def __init__(self, system, node_id: str, service: str):
        self.system = system
        self.node_id = node_id
        cluster = system.cluster
        self.cache = LruCache(system.capacity_per_instance,
                              name=f"{system.name}:{node_id}")
        self.cache.obs = system.sim.obs
        self.endpoint = Endpoint(
            cluster.network, node_id, service,
            service_time_ms=cluster.config.latency.agent_service_ms,
            cpu=cluster.nodes[node_id].cores,
        )

    @property
    def address(self) -> str:
        return self.endpoint.address

    def install(self, key: str, value: object, version: int) -> None:
        size = sizeof(value)
        if size <= self.cache.capacity_bytes:
            self.cache.put(CacheEntry(
                key=key, value=value, state=VALID,
                size_bytes=size, version=version,
            ))


class _InvalidatingSystem(StorageAPI):
    """Common base for the per-node-cache schemes (WT / WB / TTL)."""

    def __init__(self, cluster: "Cluster", app: str,
                 capacity_per_instance: int, coord=None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.app = app
        self.coord = coord
        self.capacity_per_instance = capacity_per_instance
        self.instances = {
            node_id: _ZooInstance(self, node_id, f"{self.name}-{app}")
            for node_id in cluster.node_ids
        }
        self._stats = AccessStats()
        cluster.on_crash(self._on_crash)
        for instance in self.instances.values():
            instance.endpoint.register_handler("inv", self._handle_inv)
            instance.endpoint.register_handler("ping", ping_handler)
        if coord is not None:
            # Enroll every instance in heartbeat failure detection; a
            # "membership" notify to these endpoints is dropped (one-way),
            # which is fine — peers need no view of each other here.
            for node_id, instance in self.instances.items():
                coord.join(app, node_id, instance.address)
        register_scheme_metrics(self.sim.metrics, self, app)
        if self.sim.metrics.active:
            for node_id, instance in self.instances.items():
                register_cache_gauges(self.sim.metrics, instance.cache,
                                      scheme=self.name, app=app, node=node_id)

    @property
    def stats(self) -> AccessStats:
        return self._stats

    # -- fault lifecycle -----------------------------------------------
    def _on_crash(self, node_id: str) -> None:
        """Process memory dies with the node: drop the cache instance."""
        instance = self.instances.get(node_id)
        if instance is not None:
            instance.cache.clear()

    def restart_instance(self, node_id: str):
        """Re-admit a restarted node (its cache restarts cold)."""
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        if self.coord is not None:
            self.coord.join(self.app, node_id,
                            self.instances[node_id].address)

    # -- peer invalidation ---------------------------------------------
    def _broadcast_invalidate(self, instance: _ZooInstance, key: str) -> None:
        """Best-effort one-way invalidations to every peer instance."""
        obs = self.sim.obs
        sent = 0
        for node_id, peer in self.instances.items():
            if node_id == instance.node_id:
                continue
            if obs.active:
                obs.emit(INV_SEND, node=instance.node_id, key=key,
                         dst=node_id)
            instance.endpoint.notify(
                peer.address, "inv", key, size_bytes=len(key),
                trace=INHERIT)
            sent += 1
        self._stats.invalidations_per_write.record(sent)

    def _handle_inv(self, endpoint, src, key):
        instance = self.instances[endpoint.node_id]
        removed = instance.cache.remove(key)
        if removed is not None:
            obs = self.sim.obs
            if obs.active:
                obs.emit(CACHE_INVALIDATE, node=endpoint.node_id, key=key,
                         state=removed.state)
        return Reply(True, size_bytes=1)
        yield  # pragma: no cover - generator marker (no suspension points)


class WriteThroughSystem(_InvalidatingSystem):
    """Write-through: synchronous durable writes + peer invalidation."""

    name = "write-through"
    consistency = "eventual"

    def __init__(self, cluster: "Cluster", app: str = "app",
                 capacity_per_instance: int = 64 * MB, coord=None):
        super().__init__(cluster, app, capacity_per_instance, coord=coord)

    def verify_invariants(self, cluster=None) -> list:
        """Version-anchored check: no cached version claims a value
        storage never held (staleness itself is legitimate here)."""
        return _check_version_anchor(self, skip_dirty=None)

    def _do_read(self, node_id: str, key: str, ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        instance = self.instances[node_id]
        entry = instance.cache.get(key)
        if entry is not None:
            self._stats.record(OpKind.LOCAL_READ_HIT, self.sim.now - start)
            return entry.value
        value, version = yield from self.cluster.storage.read(
            key, reader=node_id)
        if value is not None:
            instance.install(key, value, version)
        self._stats.record(OpKind.READ_MISS, self.sim.now - start)
        return value

    def _do_write(self, node_id: str, key: str, value: object,
                  ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        instance = self.instances[node_id]
        had = key in instance.cache
        version = yield from self.cluster.storage.write(
            key, value, writer=node_id)
        instance.install(key, value, version)
        self._broadcast_invalidate(instance, key)
        kind = OpKind.LOCAL_WRITE_HIT if had else OpKind.WRITE_MISS
        self._stats.record(kind, self.sim.now - start)
        return None


class _DirtyEntry:
    """One coalesced dirty-buffer slot (latest value wins)."""

    __slots__ = ("value", "enqueued_ms", "coalesced")

    def __init__(self, value: object, enqueued_ms: float):
        self.value = value
        self.enqueued_ms = enqueued_ms
        self.coalesced = 1


class WriteBehindSystem(_InvalidatingSystem):
    """Write-behind: bounded dirty buffer + flush daemon + loss accounting."""

    name = "write-behind"
    consistency = "eventual"

    def __init__(self, cluster: "Cluster", app: str = "app",
                 capacity_per_instance: int = 64 * MB,
                 buffer_entries: int = 32,
                 flush_interval_ms: float = 50.0, coord=None):
        if buffer_entries < 1:
            raise ValueError("buffer_entries must be >= 1")
        super().__init__(cluster, app, capacity_per_instance, coord=coord)
        self.buffer_entries = buffer_entries
        self.flush_interval_ms = flush_interval_ms
        #: node -> key -> _DirtyEntry, FIFO by first enqueue.
        self.dirty: dict[str, "OrderedDict[str, _DirtyEntry]"] = {}
        #: node -> keys whose flush write is in flight (dict-as-set).
        self._inflight_flush: dict[str, dict] = {}
        # Accounting: enqueued == flushed + lost + coalesced + pending.
        self.writes_enqueued = 0
        self.writes_flushed = 0
        self.writes_lost = 0
        self.writes_coalesced = 0
        self.backpressure_stalls = 0
        for node_id, instance in self.instances.items():
            self.dirty[node_id] = OrderedDict()
            self._inflight_flush[node_id] = {}
            # Per-node accounting lives on the instance so callbacks and
            # the crash listener agree on one source of truth.
            instance.flushed = 0
            instance.lost = 0
            instance.stalls = 0
            self.sim.spawn(self._flush_daemon(node_id),
                           name=f"wb:flush:{app}:{node_id}", daemon=True)
        metrics = self.sim.metrics
        if metrics.active:
            gauge = metrics.gauge(
                "cache_dirty_buffered",
                "Writes parked in the write-behind dirty buffer.",
                labelnames=("app", "node", "scheme"))
            flushes = metrics.counter(
                "cache_flushes_total",
                "Dirty-buffer entries flushed to durable storage.",
                labelnames=("app", "node", "scheme"))
            lost = metrics.counter(
                "cache_dirty_lost_total",
                "Dirty-buffer entries lost to a node crash.",
                labelnames=("app", "node", "scheme"))
            stalls = metrics.counter(
                "cache_flush_backpressure_total",
                "Writes stalled on a synchronous flush (buffer full).",
                labelnames=("app", "node", "scheme"))
            for node_id, instance in self.instances.items():
                buffer = self.dirty[node_id]
                gauge.set_callback(lambda buffer=buffer: len(buffer),
                                   scheme=self.name, app=app, node=node_id)
                flushes.set_callback(
                    lambda i=instance: i.flushed,
                    scheme=self.name, app=app, node=node_id)
                lost.set_callback(
                    lambda i=instance: i.lost,
                    scheme=self.name, app=app, node=node_id)
                stalls.set_callback(
                    lambda i=instance: i.stalls,
                    scheme=self.name, app=app, node=node_id)

    # -- fault lifecycle -----------------------------------------------
    def _on_crash(self, node_id: str) -> None:
        buffer = self.dirty.get(node_id)
        if buffer:
            obs = self.sim.obs
            for key, entry in buffer.items():  # FIFO enqueue order
                self.writes_lost += 1
                self.instances[node_id].lost += 1
                if obs.active:
                    obs.emit(CACHE_FLUSH_LOST, node=node_id, key=key,
                             coalesced=entry.coalesced,
                             buffered_ms=self.sim.now - entry.enqueued_ms)
            buffer.clear()
        super()._on_crash(node_id)

    # -- dirty-buffer mechanics ------------------------------------------
    def _flush_one(self, node_id: str):
        """Pop and durably write the oldest flushable dirty entry."""
        buffer = self.dirty[node_id]
        inflight = self._inflight_flush[node_id]
        victim = None
        for key in buffer:  # FIFO enqueue order
            if key not in inflight:
                victim = key
                break
        if victim is None:
            return False
        entry = buffer.pop(victim)
        # Serialize per-key flushes: a re-dirty during this write must
        # wait for the next round, so storage sees per-key write order.
        inflight[victim] = None
        try:
            version = yield from self.cluster.storage.write(
                victim, entry.value, writer=node_id)
        except Interrupt:
            # A backpressure flush runs in the writer's own process; if
            # the node crashes mid-write the entry is gone exactly like
            # one cleared from the buffer — account it as lost.
            self.writes_lost += 1
            instance = self.instances[node_id]
            instance.lost += 1
            obs = self.sim.obs
            if obs.active:
                obs.emit(CACHE_FLUSH_LOST, node=node_id, key=victim,
                         coalesced=entry.coalesced,
                         buffered_ms=self.sim.now - entry.enqueued_ms)
            raise
        finally:
            inflight.pop(victim, None)
        self.writes_flushed += 1
        instance = self.instances[node_id]
        instance.flushed += 1
        cached = instance.cache.peek(victim)
        if cached is not None and cached.value is entry.value:
            cached.version = version
        obs = self.sim.obs
        if obs.active:
            obs.emit(CACHE_FLUSH_WRITE, node=node_id, key=victim,
                     version=version, coalesced=entry.coalesced,
                     buffered_ms=self.sim.now - entry.enqueued_ms)
        self._broadcast_invalidate(instance, victim)
        return True

    def _flush_daemon(self, node_id: str):
        while True:
            yield self.sim.timeout(self.flush_interval_ms)
            if not self.cluster.nodes[node_id].alive:
                continue
            # Drain what is flushable this round; keys re-dirtied while
            # their previous flush is still in flight wait a round.
            for _ in range(len(self.dirty[node_id])):
                if not self.cluster.nodes[node_id].alive:
                    break
                flushed = yield from self._flush_one(node_id)
                if not flushed:
                    break

    def pending(self, node_id: Optional[str] = None) -> int:
        """Dirty entries currently buffered (one node or all)."""
        if node_id is not None:
            return len(self.dirty[node_id])
        return sum(len(buffer) for buffer in self.dirty.values())

    def verify_invariants(self, cluster=None) -> list:
        violations = _check_version_anchor(self, skip_dirty=self.dirty)
        for node_id in sorted(self.dirty):
            if len(self.dirty[node_id]) > self.buffer_entries:
                violations.append(
                    f"{node_id}: dirty buffer holds "
                    f"{len(self.dirty[node_id])} entries "
                    f"(bound {self.buffer_entries})")
        booked = (self.writes_flushed + self.writes_lost
                  + self.writes_coalesced + self.pending())
        inflight = sum(len(i) for i in self._inflight_flush.values())
        if booked + inflight != self.writes_enqueued:
            violations.append(
                f"write-behind accounting drift: {self.writes_enqueued} "
                f"enqueued != {self.writes_flushed} flushed + "
                f"{self.writes_lost} lost + {self.writes_coalesced} "
                f"coalesced + {self.pending()} pending + "
                f"{inflight} in flight")
        return violations

    # -- the data path ----------------------------------------------------
    def _do_read(self, node_id: str, key: str, ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        instance = self.instances[node_id]
        entry = instance.cache.get(key)
        if entry is not None:
            self._stats.record(OpKind.LOCAL_READ_HIT, self.sim.now - start)
            return entry.value
        value, version = yield from self.cluster.storage.read(
            key, reader=node_id)
        if value is not None:
            instance.install(key, value, version)
        self._stats.record(OpKind.READ_MISS, self.sim.now - start)
        return value

    def _do_write(self, node_id: str, key: str, value: object,
                  ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        instance = self.instances[node_id]
        buffer = self.dirty[node_id]
        while key not in buffer and len(buffer) >= self.buffer_entries:
            # Bounded buffer: the writer pays for the oldest flush (or
            # waits, when every buffered key is already mid-flush).
            self.backpressure_stalls += 1
            instance.stalls += 1
            flushed = yield from self._flush_one(node_id)
            if not flushed:
                yield self.sim.sleep(
                    self.cluster.config.latency.local_access)
        self.writes_enqueued += 1
        slot = buffer.get(key)
        if slot is None:
            buffer[key] = _DirtyEntry(value, self.sim.now)
        else:
            # Coalesce: keep the FIFO position, supersede the value.
            self.writes_coalesced += 1
            slot.value = value
            slot.coalesced += 1
        instance.install(key, value,
                         self.cluster.storage.version_of(key))
        obs = self.sim.obs
        if obs.active:
            obs.emit(CACHE_FLUSH_ENQUEUE, node=node_id, key=key,
                     buffered=len(buffer))
        self._stats.record(OpKind.LOCAL_WRITE_HIT, self.sim.now - start)
        return None


class ReadThroughTtlSystem(_InvalidatingSystem):
    """Cache-aside with a TTL freshness lease (bounded staleness)."""

    name = "read-through-ttl"
    consistency = "bounded-staleness"

    def __init__(self, cluster: "Cluster", app: str = "app",
                 capacity_per_instance: int = 64 * MB,
                 ttl_ms: float = 500.0, coord=None):
        if ttl_ms <= 0.0:
            raise ValueError("ttl_ms must be > 0")
        super().__init__(cluster, app, capacity_per_instance, coord=coord)
        self.ttl_ms = ttl_ms
        #: node -> key -> completion time of the fetch that installed it.
        self.fetched_at: dict[str, dict[str, float]] = {
            node_id: {} for node_id in cluster.node_ids}
        self.ttl_expired = 0
        #: (t_ms, node, key, version) per read served (for the checker).
        self.read_log: list = []
        #: (t_ms, key, version) per storage commit (for the checker).
        self.write_log: list = []
        cluster.storage.add_write_listener(self._on_commit)
        metrics = self.sim.metrics
        if metrics.active:
            metrics.counter(
                "cache_ttl_expired_total",
                "Hits refused because the entry's TTL had lapsed.",
                labelnames=("app", "scheme"),
            ).set_callback(lambda: self.ttl_expired,
                           scheme=self.name, app=app)

    def _on_commit(self, key: str, value: object, version: int,
                   writer: str) -> None:
        self.write_log.append((self.sim.now, key, version))

    def _on_crash(self, node_id: str) -> None:
        self.fetched_at[node_id].clear()
        super()._on_crash(node_id)

    def verify_invariants(self, cluster=None) -> list:
        return check_bounded_staleness(
            self.read_log, self.write_log, self.ttl_ms)

    def _do_read(self, node_id: str, key: str, ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        instance = self.instances[node_id]
        fetched = self.fetched_at[node_id]
        entry = instance.cache.get(key)
        if entry is not None:
            age = self.sim.now - fetched.get(key, 0.0)
            if age <= self.ttl_ms:
                self.read_log.append(
                    (self.sim.now, node_id, key, entry.version))
                self._stats.record(OpKind.LOCAL_READ_HIT,
                                   self.sim.now - start)
                return entry.value
            self.ttl_expired += 1
            # Dropping an expired entry needs no Interrupt compensation:
            # a cache without the entry is always a legal state.
            instance.cache.remove(key)  # noqa: INT01
            obs = self.sim.obs
            if obs.active:
                obs.emit(CACHE_TTL_EXPIRE, node=node_id, key=key,
                         age_ms=age, ttl_ms=self.ttl_ms)
        value, version = yield from self.cluster.storage.read(
            key, reader=node_id)
        if value is not None:
            instance.install(key, value, version)
            fetched[key] = self.sim.now
        self.read_log.append((self.sim.now, node_id, key, version))
        self._stats.record(OpKind.READ_MISS, self.sim.now - start)
        return value

    def _do_write(self, node_id: str, key: str, value: object,
                  ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        instance = self.instances[node_id]
        yield from self.cluster.storage.write(key, value, writer=node_id)
        # Cache-aside: delete, don't update — the next read refetches.
        instance.cache.remove(key)
        self.fetched_at[node_id].pop(key, None)
        self._stats.record(OpKind.WRITE_MISS, self.sim.now - start)
        return None


def _check_version_anchor(system, skip_dirty) -> list:
    """No cached copy may claim a (version, value) storage never had.

    The eventual-consistency schemes legitimately hold *stale* copies
    (a dropped invalidation is part of the model), so unlike Concord's
    checker this one only rejects fabrications: a cached version newer
    than storage's, or a value that differs from storage's under the
    same version.  Keys sitting in a write-behind dirty buffer are
    exempt (their value is *ahead* of storage by design)."""
    violations: list = []
    storage = system.cluster.storage
    for node_id in sorted(system.instances):
        node = system.cluster.nodes.get(node_id)
        if node is not None and not node.alive:
            continue
        instance = system.instances[node_id]
        dirty = skip_dirty.get(node_id, ()) if skip_dirty else ()
        for key in instance.cache.keys():
            if key in dirty:
                continue
            entry = instance.cache.peek(key)
            if entry is None:
                continue
            record = storage.peek(key)
            if record is None:
                violations.append(
                    f"{node_id}: caches {key!r} but storage has no record")
            elif entry.version > record.version:
                violations.append(
                    f"{node_id}: cached version {entry.version} of {key!r} "
                    f"is ahead of storage version {record.version}")
            elif (entry.version == record.version
                  and entry.value != record.value):
                violations.append(
                    f"{node_id}: cached {key!r} v{entry.version} holds "
                    f"{entry.value!r} but storage holds {record.value!r}")
    return violations


class _CausalSession:
    """One client's (function's) causal past, carried across nodes."""

    __slots__ = ("vc", "deps", "seen", "last_node")

    def __init__(self):
        #: Merge of every write vc this session issued or observed.
        self.vc = ZERO
        #: key -> minimum storage version a read of key must return.
        self.deps: dict[str, int] = {}
        #: Merge of the vcs of values read (writes-follow-reads floor).
        self.seen = ZERO
        self.last_node: Optional[str] = None


class _CausalInstance(_ZooInstance):
    """Per-node causal state on top of the shared cache instance."""

    def __init__(self, system: "CausalCacheSystem", node_id: str,
                 service: str):
        super().__init__(system, node_id, service)
        #: Merge of every write vc applied here (the read gate).
        self.applied_vc = ZERO
        #: key -> vc of the last write applied to it here.
        self.vc_of: dict[str, VectorClock] = {}
        #: Writes originated here since the last crash, in seq order:
        #: (seq, key, value, version, vc).
        self.local_log: list = []

    def apply(self, key: str, value: object, version: int,
              vc: VectorClock) -> bool:
        """Install a write if it is newer than what we hold; merge vcs."""
        self.applied_vc = self.applied_vc.merge(vc)
        current = self.cache.peek(key)
        if current is not None and current.version >= version:
            return False
        self.install(key, value, version)
        if self.cache.peek(key) is not None:
            self.vc_of[key] = self.vc_of.get(key, ZERO).merge(vc)
        return True


class CausalCacheSystem(StorageAPI):
    """Causally consistent cache with vc metadata and session migration."""

    name = "causal"
    consistency = "causal"

    def __init__(self, cluster: "Cluster", app: str = "app",
                 capacity_per_instance: int = 64 * MB,
                 sync_timeout_ms: float = 100.0,
                 record_history: bool = True, coord=None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.app = app
        self.coord = coord
        self.capacity_per_instance = capacity_per_instance
        self.sync_timeout_ms = sync_timeout_ms
        self.record_history = record_history
        self.instances = {
            node_id: _CausalInstance(self, node_id, f"causal-{app}")
            for node_id in cluster.node_ids
        }
        for instance in self.instances.values():
            instance.endpoint.register_handler(
                "repl", self._handle_repl, meta=True)
            instance.endpoint.register_handler("pull", self._handle_pull)
            instance.endpoint.register_handler("ping", ping_handler)
        if coord is not None:
            for node_id, instance in self.instances.items():
                coord.join(app, node_id, instance.address)
        #: Session tokens by client (function) name; the token models
        #: causal metadata the client carries, so it survives migration.
        self.sessions: dict[str, _CausalSession] = {}
        #: node -> count of writes ever originated there.  Survives
        #: crashes (a restarted node must not reuse vc components, like
        #: an epoch-stamped hybrid clock in a real deployment).
        self.write_seq: dict[str, int] = {
            node_id: 0 for node_id in cluster.node_ids}
        self.syncs = 0
        self.sync_failures = 0
        self.migrations = 0
        #: Session-guarantee history (verification; see repro.verify.causal).
        self.history: list = []
        self._stats = AccessStats()
        cluster.on_crash(self._on_crash)
        register_scheme_metrics(self.sim.metrics, self, app)
        metrics = self.sim.metrics
        if metrics.active:
            for node_id, instance in self.instances.items():
                register_cache_gauges(metrics, instance.cache,
                                      scheme=self.name, app=app, node=node_id)
            metrics.counter(
                "causal_syncs_total",
                "Pull rounds issued to close a vector-clock gap.",
                labelnames=("app", "scheme"),
            ).set_callback(lambda: self.syncs, scheme=self.name, app=app)
            metrics.counter(
                "causal_sync_failures_total",
                "Pull rounds that timed out (gap left to storage).",
                labelnames=("app", "scheme"),
            ).set_callback(lambda: self.sync_failures,
                           scheme=self.name, app=app)
            metrics.counter(
                "causal_migrations_total",
                "Session moves between nodes (client migration).",
                labelnames=("app", "scheme"),
            ).set_callback(lambda: self.migrations,
                           scheme=self.name, app=app)

    @property
    def stats(self) -> AccessStats:
        return self._stats

    # -- fault lifecycle -----------------------------------------------
    def _on_crash(self, node_id: str) -> None:
        instance = self.instances.get(node_id)
        if instance is not None:
            instance.cache.clear()
            instance.vc_of.clear()
            instance.local_log.clear()
            instance.applied_vc = ZERO

    def restart_instance(self, node_id: str):
        """Re-admit a restarted node: cold cache, write counter intact."""
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        instance = self.instances[node_id]
        # The node's own component must never regress (epoch semantics);
        # everything else is relearned from replication and pulls.
        instance.applied_vc = ZERO.advance(node_id, self.write_seq[node_id])
        if self.coord is not None:
            self.coord.join(self.app, node_id, instance.address)

    def verify_invariants(self, cluster=None) -> list:
        return check_session_guarantees(self.history)

    # -- sessions --------------------------------------------------------
    def _session(self, node_id: str, ctx: Optional[object]) -> _CausalSession:
        client = getattr(ctx, "function", "") or ""
        session = self.sessions.get(client)
        if session is None:
            session = _CausalSession()
            self.sessions[client] = session
        if session.last_node is not None and session.last_node != node_id:
            self.migrations += 1
            obs = self.sim.obs
            if obs.active:
                obs.emit(CAUSAL_MIGRATE, node=node_id, key=client,
                         src=session.last_node)
        session.last_node = node_id
        return session

    # -- RPC handlers ----------------------------------------------------
    def _handle_repl(self, endpoint, src, args, meta):
        key, value, version = args
        instance = self.instances[endpoint.node_id]
        node = self.cluster.nodes.get(endpoint.node_id)
        if node is None or node.alive:
            instance.apply(key, value, version, meta or ZERO)
        return Reply(True, size_bytes=1)
        yield  # pragma: no cover - generator marker (no suspension points)

    def _handle_pull(self, endpoint, src, have):
        instance = self.instances[endpoint.node_id]
        node_id = endpoint.node_id
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        entries = [record for record in instance.local_log
                   if record[0] > have]
        size = 16
        for record in entries:
            size += sizeof(record[2]) + _vc_bytes(record[4]) + 16
        return Reply((entries, self.write_seq[node_id]), size_bytes=size)

    # -- the data path ----------------------------------------------------
    def _do_write(self, node_id: str, key: str, value: object,
                  ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        instance = self.instances[node_id]
        session = self._session(node_id, ctx)
        self.write_seq[node_id] += 1
        vc = (session.vc.merge(instance.applied_vc)
              .advance(node_id, self.write_seq[node_id]))
        # Durability first: the write survives any crash from here on.
        version = yield from self.cluster.storage.write(
            key, value, writer=node_id)
        # Concurrent invocations of the same session may have completed
        # reads while the storage write was in flight; fold the session
        # clock in again *before* this clock becomes visible anywhere,
        # so the write dominates everything its session has read
        # (writes-follow-reads).  No suspension points below until the
        # history append, so the clock cannot go stale again.
        vc = vc.merge(session.vc)
        instance.apply(key, value, version, vc)
        instance.local_log.append(
            (self.write_seq[node_id], key, value, version, vc))
        payload_bytes = sizeof(value) + _vc_bytes(vc) + 16
        for peer_id, peer in self.instances.items():
            if peer_id == node_id:
                continue
            instance.endpoint.notify(
                peer.address, "repl", (key, value, version),
                size_bytes=payload_bytes, trace=INHERIT, meta=vc)
        session.vc = session.vc.merge(vc)
        session.deps[key] = max(session.deps.get(key, 0), version)
        obs = self.sim.obs
        if obs.active:
            obs.emit(CAUSAL_WRITE, node=node_id, key=key, version=version,
                     vc=vc.as_tuple())
        if self.record_history:
            self.history.append(CausalOp(
                op="w", t_ms=self.sim.now, session=session_key(ctx),
                node=node_id, key=key, version=version, vc=vc))
        self._stats.record(OpKind.WRITE_MISS, self.sim.now - start)
        return None

    def _sync(self, instance: _CausalInstance, session: _CausalSession):
        """One pull round per lagging origin; best-effort under faults."""
        node_id = instance.node_id
        lagging = [origin for origin in sorted(self.instances)
                   if origin != node_id
                   and instance.applied_vc.get(origin)
                   < session.vc.get(origin)]
        obs = self.sim.obs
        for origin in lagging:
            self.syncs += 1
            have = instance.applied_vc.get(origin)
            try:
                entries, origin_seq = yield from instance.endpoint.call(
                    self.instances[origin].address, "pull", have,
                    size_bytes=16, timeout=self.sync_timeout_ms,
                    trace=INHERIT)
            except RpcTimeout:
                self.sync_failures += 1
                continue
            for _seq, key, value, version, vc in entries:
                instance.apply(key, value, version, vc)
            # A crashed-and-restarted origin has forgotten log entries
            # below its surviving counter; their data is safe in storage
            # (writes are durable before they are visible), so the gap
            # is declared closed up to what the session needs.
            target = min(origin_seq, session.vc.get(origin))
            # Monotonic advance over durably-applied entries: if the
            # next pull's Interrupt lands first, the half-synced clock
            # is still a correct (merely conservative) applied_vc.
            instance.applied_vc = instance.applied_vc.advance(  # noqa: INT01
                origin, target)
            if obs.active:
                obs.emit(CAUSAL_SYNC, node=node_id, key=origin,
                         pulled=len(entries), have=have,
                         upto=instance.applied_vc.get(origin))

    def _do_read(self, node_id: str, key: str, ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        instance = self.instances[node_id]
        session = self._session(node_id, ctx)

        synced = False
        if not instance.applied_vc.dominates(session.vc):
            # Cross-key causal gap: pull from the lagging origins before
            # serving anything (transitive causality, CausalMesh-style).
            yield from self._sync(instance, session)
            synced = True

        # Every suspension point can interleave with concurrent
        # invocations of the same session, which may raise the session's
        # per-key dep; re-read it after each one so the value served is
        # never older than one this session already returned (monotonic
        # reads / read-your-writes under intra-session concurrency).
        while True:
            dep = session.deps.get(key, 0)
            entry = instance.cache.get(key)
            # `instance` is the stable per-node object (crashes clear it
            # in place and interrupt this process), and dep/entry/vc are
            # re-read every iteration — the loop IS the revalidation.
            if (entry is not None and entry.version >= dep  # noqa: ATM01
                    and instance.applied_vc.dominates(session.vc)):
                value, version = entry.value, entry.version
                value_vc = instance.vc_of.get(key, ZERO)
                kind = (OpKind.REMOTE_READ_HIT if synced
                        else OpKind.LOCAL_READ_HIT)
                break
            # Storage fallback: per-key versions are totally ordered and
            # durable-before-visible, so this satisfies the session's
            # per-key deps even when peers are dead.
            value, version = yield from self.cluster.storage.read(
                key, reader=node_id)
            if value is not None:
                # Installing a durably-committed version is idempotent;
                # an Interrupt leaving it cached is a legal state.
                instance.install(key, value, version)  # noqa: INT01
            if version >= session.deps.get(key, 0):
                value_vc = instance.vc_of.get(key, ZERO)
                kind = OpKind.READ_MISS
                break
            # A concurrent read/write in this session observed a newer
            # version while ours was in flight; go around again (the dep
            # version is durably committed, so a fresh storage round
            # trip can always satisfy it).
        session.deps[key] = max(session.deps.get(key, 0), version)
        session.seen = session.seen.merge(value_vc)
        session.vc = session.vc.merge(value_vc)
        if self.record_history:
            self.history.append(CausalOp(
                op="r", t_ms=self.sim.now, session=session_key(ctx),
                node=node_id, key=key, version=version, vc=value_vc))
        self._stats.record(kind, self.sim.now - start)
        return value


def session_key(ctx: Optional[object]) -> str:
    """The client identity a session is keyed by (function name)."""
    return getattr(ctx, "function", "") or ""


# -- registry entries -------------------------------------------------------

@register_scheme(
    "write-through",
    description="Per-node LRU; synchronous durable writes + best-effort "
                "peer invalidation (eventual consistency, zero crash loss).")
def build_write_through(cluster, coord, app, *, capacity=None, **_):
    return WriteThroughSystem(
        cluster, app=(app or "app"),
        capacity_per_instance=(capacity or 64 * MB), coord=coord)


@register_scheme(
    "write-behind",
    description="Bounded dirty buffer + flush daemon; fast acks, crash "
                "loss accounted per entry (eventual consistency).")
def build_write_behind(cluster, coord, app, *, capacity=None,
                       wb_buffer_entries=32, wb_flush_interval_ms=50.0,
                       **_):
    return WriteBehindSystem(
        cluster, app=(app or "app"),
        capacity_per_instance=(capacity or 64 * MB),
        buffer_entries=wb_buffer_entries,
        flush_interval_ms=wb_flush_interval_ms, coord=coord)


@register_scheme(
    "read-through-ttl",
    description="Cache-aside with a TTL freshness lease; staleness "
                "bounded by the TTL, no cross-node traffic.")
def build_read_through_ttl(cluster, coord, app, *, capacity=None,
                           ttl_ms=500.0, **_):
    return ReadThroughTtlSystem(
        cluster, app=(app or "app"),
        capacity_per_instance=(capacity or 64 * MB), ttl_ms=ttl_ms,
        coord=coord)


@register_scheme(
    "causal",
    description="Causally consistent cache: vector-clock metadata on "
                "RPC, session guarantees across client migration.")
def build_causal(cluster, coord, app, *, capacity=None,
                 causal_sync_timeout_ms=100.0, **_):
    return CausalCacheSystem(
        cluster, app=(app or "app"),
        capacity_per_instance=(capacity or 64 * MB),
        sync_timeout_ms=causal_sync_timeout_ms, coord=coord)
