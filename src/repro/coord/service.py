"""Membership groups with heartbeat-based failure detection.

Each application forms its own group (ZooKeeper hierarchical namespaces,
paper Section III-F): only the members of the failed node's groups are
notified, never unrelated applications.  Detection is by real simulated
heartbeat RPCs with timeouts, so detection latency is
``heartbeat_interval * allowed misses`` as in a real deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.config import SimConfig
from repro.net.rpc import Endpoint, Reply, RpcTimeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Network
    from repro.sim import Simulator


@dataclass(frozen=True)
class MembershipEvent:
    """Notification delivered to group members on membership changes."""

    kind: str  # "joined" | "left" | "failed"
    app: str
    member: str  # node id of the affected member
    address: str  # endpoint address of the affected member


class CoordinationService:
    """Tracks per-application membership and detects failed members.

    Members join with the endpoint address that should receive
    ``membership`` notifications and answer ``ping`` heartbeats.  A member
    missing ``config.heartbeat_misses`` consecutive heartbeats is declared
    failed, removed, and the survivors of each of its groups are notified.
    """

    NODE_ID = "coord"

    def __init__(
        self,
        network: "Network",
        config: Optional[SimConfig] = None,
        run_heartbeats: bool = True,
    ):
        self.config = config or SimConfig()
        self.network = network
        self.sim: "Simulator" = network.sim
        self.endpoint = Endpoint(network, self.NODE_ID, "zk")
        #: app -> {node_id: member endpoint address}
        self._groups: dict[str, dict[str, str]] = {}
        #: (app, node_id) -> consecutive missed heartbeats
        self._misses: dict[tuple[str, str], int] = {}
        self.failures_detected: list[tuple[float, str, str]] = []
        metrics = self.sim.metrics
        if metrics.active:
            metrics.counter(
                "coord_failures_declared_total",
                "Members declared failed (per (app, member) declaration).",
                labelnames=(),
            ).set_callback(lambda: len(self.failures_detected))
        if run_heartbeats:
            self.sim.spawn(self._heartbeat_loop(), name="coord:heartbeats", daemon=True)

    # -- membership -----------------------------------------------------------
    def members(self, app: str) -> dict[str, str]:
        """Current members of ``app``'s group: {node_id: address}."""
        return dict(self._groups.get(app, {}))

    def join(self, app: str, node_id: str, address: str) -> None:
        """Add a member and notify the existing members of the group."""
        group = self._groups.setdefault(app, {})
        if node_id in group:
            return
        event = MembershipEvent("joined", app, node_id, address)
        self._notify_group(app, event, exclude=node_id)
        group[node_id] = address

    def leave(self, app: str, node_id: str) -> None:
        """Gracefully remove a member and notify the survivors."""
        group = self._groups.get(app, {})
        address = group.pop(node_id, None)
        if address is None:
            return
        self._misses.pop((app, node_id), None)
        self._notify_group(app, MembershipEvent("left", app, node_id, address))
        if not group:
            del self._groups[app]

    def report_unreachable(self, app: str, node_id: str) -> None:
        """Explicit failure report (a peer timed out talking to the member).

        Paper Section III-H: a node waiting on an unreachable peer informs
        the controller, which removes the peer's cache instance without
        waiting for heartbeat misses to accumulate.  The crash is a
        *node*-level fact, so the member is declared failed in every group
        it belongs to — exactly as when heartbeat misses accumulate — not
        just in the reporting application's group.
        """
        if node_id in self._groups.get(app, {}):
            self._declare_failed(node_id)

    # -- failure detection -------------------------------------------------
    def _heartbeat_loop(self):
        interval = self.config.heartbeat_interval_ms
        while True:
            yield self.sim.timeout(interval)
            targets = [
                (app, node_id, address)
                for app, group in self._groups.items()
                for node_id, address in group.items()
            ]
            for app, node_id, address in targets:
                self.sim.spawn(
                    self._probe(app, node_id, address),
                    name=f"coord:probe:{app}:{node_id}",
                    daemon=True,
                )

    def _probe(self, app: str, node_id: str, address: str):
        key = (app, node_id)
        try:
            yield from self.endpoint.call(
                address, "ping", None,
                timeout=self.config.heartbeat_interval_ms * 0.9,
            )
        except RpcTimeout:
            if node_id not in self._groups.get(app, {}):
                return  # already removed while the probe was in flight
            self._misses[key] = self._misses.get(key, 0) + 1
            if self._misses[key] >= self.config.heartbeat_misses:
                self._declare_failed(node_id, apps=[app])
        else:
            self._misses[key] = 0

    def _declare_failed(self, node_id: str, apps: Optional[list[str]] = None) -> None:
        """Remove ``node_id`` from (some) groups and notify survivors."""
        affected = apps if apps is not None else [
            app for app, group in self._groups.items() if node_id in group
        ]
        for app in affected:
            group = self._groups.get(app, {})
            address = group.pop(node_id, None)
            if address is None:
                continue
            self._misses.pop((app, node_id), None)
            self.failures_detected.append((self.sim.now, app, node_id))
            tracer = self.sim.tracer
            if tracer.active:
                tracer.instant("coord:declare_failed", "failure",
                               app=app, member=node_id)
            event = MembershipEvent("failed", app, node_id, address)
            self._notify_group(app, event)
            # Best-effort notification to the ejected member itself: if it
            # is actually alive (false positive), it must learn that its
            # cache instance was deleted and stop serving from it.
            self.endpoint.notify(address, "membership", event)
            if not group:
                del self._groups[app]

    # -- notification delivery -------------------------------------------------
    def _notify_group(
        self, app: str, event: MembershipEvent, exclude: Optional[str] = None
    ) -> None:
        for member_id, address in self._groups.get(app, {}).items():
            if member_id == exclude or member_id == event.member:
                continue
            self.endpoint.notify(address, "membership", event)


def ping_handler(endpoint: Endpoint, src: str, args: object):
    """Standard heartbeat reply handler for group members."""
    return Reply("pong", size_bytes=1)
    yield  # pragma: no cover - generator marker
