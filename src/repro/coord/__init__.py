"""Distributed coordination service (ZooKeeper stand-in).

Manages per-application membership groups, detects member failures through
heartbeats, and notifies the surviving members (paper Section III-F).
"""

from repro.coord.service import CoordinationService, MembershipEvent

__all__ = ["CoordinationService", "MembershipEvent"]
