"""Generator-based simulation processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator

ProcessGenerator = Generator[Event, object, object]


class Process(Event):
    """A running simulation process.

    Wraps a generator that yields :class:`~repro.sim.events.Event` objects.
    The process itself *is* an event: it fires when the generator returns
    (value = the generator's return value) or raises (failure).  This lets
    processes wait on each other by yielding a :class:`Process`.

    ``daemon`` processes have failures recorded on the simulator instead of
    crashing the run; use for background services whose crash is itself a
    simulated condition (for example a process on a failed node).
    """

    __slots__ = ("generator", "daemon", "trace_ctx", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        generator: ProcessGenerator,
        name: str = "",
        daemon: bool = False,
    ):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self.daemon = daemon
        #: Ambient TraceContext this process runs under (see repro.trace).
        #: Inherited from the spawning process; updated as spans open/close.
        self.trace_ctx = None
        #: The event this process is currently blocked on, if any.
        self._waiting_on: Optional[Event] = None
        # Kick off the first step "now".
        bootstrap = Event(sim, name=f"init:{self.name}")
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`~repro.sim.errors.Interrupt` into the process.

        No-op if the process already finished.  The event the process was
        waiting on is abandoned (its eventual outcome is ignored).
        """
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        wakeup = Event(self.sim, name=f"interrupt:{self.name}")
        wakeup.callbacks.append(lambda _ev: self._step(throw=Interrupt(cause)))
        wakeup.succeed()

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Callback attached to the event the process waits on."""
        self._waiting_on = None
        if event.exception is not None:
            event.defuse()
            self._step(throw=event.exception)
        else:
            self._step(send=event._value)

    def _step(self, send: object = None, throw: Optional[BaseException] = None) -> None:
        if self.triggered:
            return
        self.sim._active_process = self
        try:
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process crashed
            if self.daemon:
                self.sim.daemon_failures.append((self, exc))
                self.defuse()
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None

        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event objects"
                )
            )
            return
        self._waiting_on = target
        if target.processed:
            # Already-processed events resume the process immediately
            # (at the current simulated time) via a fresh wakeup event.
            wakeup = Event(self.sim, name=f"wake:{self.name}")
            wakeup.callbacks.append(lambda _ev: self._resume(target))
            wakeup.succeed()
        else:
            target.callbacks.append(self._resume)
