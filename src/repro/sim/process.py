"""Generator-based simulation processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import PENDING, PROCESSED, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator

ProcessGenerator = Generator[Event, object, object]


class _RawWait:
    """Sentinel yielded by :meth:`Simulator.sleep`.

    Tells :meth:`Process._step` that the wakeup entry is already in the
    wheel (registered by ``sleep``), so there is no event to attach a
    callback to — the process just parks until the entry fires.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<raw-wait>"


RAW_WAIT = _RawWait()


class Process(Event):
    """A running simulation process.

    Wraps a generator that yields :class:`~repro.sim.events.Event` objects.
    The process itself *is* an event: it fires when the generator returns
    (value = the generator's return value) or raises (failure).  This lets
    processes wait on each other by yielding a :class:`Process`.

    ``daemon`` processes have failures recorded on the simulator instead of
    crashing the run; use for background services whose crash is itself a
    simulated condition (for example a process on a failed node).
    """

    __slots__ = ("generator", "daemon", "trace_ctx", "_waiting_on",
                 "_send", "_throw", "_sleep_token")

    def __init__(
        self,
        sim: "Simulator",
        generator: ProcessGenerator,
        name: str = "",
        daemon: bool = False,
    ):
        # Inlined Event.__init__ (spawns are a hot allocation site).
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._state = PENDING
        self._value = None
        self._exc = None
        self.callbacks = []
        self._defused = False
        self.generator = generator
        self.daemon = daemon
        #: Ambient TraceContext this process runs under (see repro.trace).
        #: Inherited from the spawning process; updated as spans open/close.
        self.trace_ctx = None
        #: The event this process is currently blocked on, if any.
        self._waiting_on: Optional[Event] = None
        #: Wheel entry of an in-flight raw sleep (see Simulator.sleep).
        self._sleep_token: Optional[list] = None
        # Bound generator methods, cached: _step runs a few hundred
        # thousand times per benchmark and the attribute walk shows up.
        self._send = generator.send
        self._throw = generator.throw
        # Kick off the first step "now" (one schedule slot, exactly like
        # the old bootstrap event + succeed()).
        sim.call_soon(self._step)

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`~repro.sim.errors.Interrupt` into the process.

        No-op if the process already finished.  The event the process was
        waiting on is abandoned (its eventual outcome is ignored).
        """
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        # Orphan any in-flight raw sleep: its wheel entry stays scheduled
        # (exactly like the stale Timeout the old path left in the heap)
        # but the token mismatch makes its firing a no-op.
        self._sleep_token = None
        self.sim.call_soon(self._interrupt_step, cause)

    # -- internal --------------------------------------------------------
    def _interrupt_step(self, cause: object) -> None:
        self._step(throw=Interrupt(cause))

    def _sleep_wake(self, token: list) -> None:
        """Fire a raw sleep (see Simulator.sleep); stale tokens are no-ops."""
        if self._sleep_token is token:
            self._sleep_token = None
            self._step()

    def _resume(self, event: Event) -> None:
        """Callback attached to the event the process waits on."""
        self._waiting_on = None
        if event._exc is not None:
            event._defused = True
            self._step(throw=event._exc)
        else:
            self._step(send=event._value)

    def _step(self, send: object = None, throw: Optional[BaseException] = None) -> None:
        if self._state is not PENDING:
            return
        sim = self.sim
        sim._active_process = self
        try:
            if throw is not None:
                target = self._throw(throw)
            else:
                target = self._send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process crashed
            if self.daemon:
                sim.daemon_failures.append((self, exc))
                self.defuse()
            self.fail(exc)
            return
        finally:
            sim._active_process = None

        if target is RAW_WAIT:
            # Simulator.sleep already planted the wakeup entry; nothing to
            # wait on — the entry re-enters _step at its scheduled time.
            self._waiting_on = None
            return
        if target.__class__ is not Event and not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event objects"
                )
            )
            return
        self._waiting_on = target
        if target._state is PROCESSED:
            # Already-processed events resume the process immediately
            # (at the current simulated time) via a raw wakeup entry —
            # the same schedule slot the old wakeup event occupied.
            sim.call_soon(self._resume, target)
        else:
            target.callbacks.append(self._resume)
