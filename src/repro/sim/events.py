"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence: it is *triggered* at most once,
either successfully (carrying a value) or with a failure (carrying an
exception).  Processes wait on events by yielding them; arbitrary callbacks
may also be attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.sim.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator

# Event lifecycle states.
PENDING = "pending"
TRIGGERED = "triggered"  # scheduled for processing, value/exc set
PROCESSED = "processed"  # callbacks have run


class Event:
    """A one-shot simulation event.

    Events move through three states: *pending* (created), *triggered*
    (value or failure set, processing scheduled) and *processed*
    (callbacks executed).  Waiting processes are resumed during
    processing.
    """

    __slots__ = ("sim", "name", "_state", "_value", "_exc", "callbacks", "_defused")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._state = PENDING
        self._value: object = None
        self._exc: Optional[BaseException] = None
        self.callbacks: list[Callable[["Event"], None]] = []
        #: True once some party has consumed a failure, suppressing the
        #: "unhandled failed event" crash at the simulator level.
        self._defused = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has fired (value or failure is set)."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully.  Requires ``triggered``."""
        if self._state == PENDING:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._exc is None

    @property
    def value(self) -> object:
        """The success value (or raises the failure exception)."""
        if self._state == PENDING:
            raise SimulationError(f"event {self!r} has not been triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None on success / still pending."""
        return self._exc

    def defuse(self) -> None:
        """Mark a failure as handled so the simulator will not re-raise it."""
        self._defused = True

    # -- triggering ------------------------------------------------------
    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._state = TRIGGERED
        # Inlined Simulator._schedule zero-delay fast path (succeed is the
        # single busiest scheduling site in a run).
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        wheel = sim._wheel
        free = wheel._free
        if free:
            entry = free.pop()
            entry[0] = sim._now
            entry[1] = seq
            entry[2] = self
        else:
            entry = [sim._now, seq, self, None, None]
        wheel._live += 1
        wheel._imm.append(entry)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed with exception ``exc``."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        if self._state != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._exc = exc
        self._state = TRIGGERED
        self.sim._schedule(self)
        return self

    def trigger_like(self, other: "Event") -> "Event":
        """Trigger with the same outcome as an already-fired ``other``."""
        if other._exc is not None:
            return self.fail(other._exc)
        return self.succeed(other._value)

    # -- internal --------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks; called by the simulator at the scheduled time."""
        self._state = PROCESSED
        callbacks = self.callbacks
        if len(callbacks) == 1:
            # Dominant case (a single waiting process): clear in place
            # before invoking — late appends land in the emptied list and
            # are never run, exactly as with the list swap below.
            callback = callbacks[0]
            callbacks.clear()
            callback(self)
        else:
            self.callbacks = []
            for callback in callbacks:
                callback(self)
        if self._exc is not None and not self._defused:
            raise self._exc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or type(self).__name__
        return f"<{label} {self._state}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        # Hot path: inlined Event.__init__ with an interned name (the old
        # f"timeout({delay})" label dominated allocation profiles; the
        # delay is still visible via the ``delay`` attribute).
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.name = "timeout"
        self._state = TRIGGERED
        self._value = value
        self._exc = None
        self.callbacks = []
        self._defused = False
        self.delay = delay
        sim._schedule(self, delay)


class AllOf(Event):
    """Fires when every child event has fired successfully.

    The value is a list of the children's values, in the order given.  If
    any child fails, :class:`AllOf` fails with that child's exception.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            if child.processed:
                # Outcome already delivered; account for it immediately.
                self._on_child(child)
            else:
                # Pending *or* scheduled (e.g. a Timeout): callbacks run
                # when the child is processed at its scheduled time.
                child.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child.exception is not None:
            child.defuse()
            self.fail(child.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Fires when the first child event fires; value is that child's value.

    A failed first child fails the :class:`AnyOf`.  Later children firing
    are ignored (failures among them are defused).
    """

    __slots__ = ("_children", "first")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self._children = list(events)
        if not self._children:
            raise ValueError("any_of() requires at least one event")
        #: The child that fired first (set when this event triggers).
        self.first: Optional[Event] = None
        for child in self._children:
            if child.processed:
                self._on_child(child)
                break
            child.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            if child.exception is not None:
                child.defuse()
            return
        self.first = child
        if child.exception is not None:
            child.defuse()
            self.fail(child.exception)
        else:
            self.succeed(child._value)
