"""Deterministic discrete-event simulation kernel.

A small, dependency-free kernel in the style of SimPy: simulation
*processes* are Python generators that ``yield`` :class:`~repro.sim.events.Event`
objects to wait on.  The :class:`~repro.sim.simulator.Simulator` owns the
event heap and the clock.

Example::

    from repro.sim import Simulator

    sim = Simulator()

    def worker(sim, results):
        yield sim.timeout(5.0)
        results.append(sim.now)

    results = []
    sim.spawn(worker(sim, results))
    sim.run()
    assert results == [5.0]
"""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
