"""The simulation event loop and clock."""

from __future__ import annotations

import heapq
from typing import Iterable, Optional

from repro.sim.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator
from repro.sim.rng import RngRegistry
from repro.telemetry.registry import NULL_REGISTRY
from repro.trace.tracer import NULL_TRACER


class Simulator:
    """Owns the event heap and the simulated clock.

    Time is a float in milliseconds (by convention of this project).  Events
    scheduled at the same instant are processed in schedule order (FIFO),
    which keeps runs fully deterministic.
    """

    def __init__(self, seed: int = 0, tracer=None, metrics=None):
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Failures of daemon processes, recorded instead of raised.
        self.daemon_failures: list[tuple[Process, BaseException]] = []
        #: Named deterministic RNG substreams.
        self.rng = RngRegistry(seed)
        #: Causal-trace collector (repro.trace); the shared no-op tracer
        #: unless one is attached, so hot paths can gate on tracer.active.
        self.tracer = (tracer if tracer is not None else NULL_TRACER).bind(self)
        #: Telemetry instrument registry (repro.telemetry); the shared
        #: no-op registry unless one is attached, so instrumentation
        #: sites can gate on metrics.active.
        self.metrics = (
            metrics if metrics is not None else NULL_REGISTRY
        ).bind(self)

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event construction ----------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires after ``delay`` ms."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing once all ``events`` have fired successfully."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def spawn(
        self, generator: ProcessGenerator, name: str = "", daemon: bool = False
    ) -> Process:
        """Start a new process from ``generator``.

        The child inherits the spawner's TraceContext, so work forked from
        inside a traced operation (handlers, invalidations, write-through
        processes) stays attached to that operation's span tree.
        """
        process = Process(self, generator, name=name, daemon=daemon)
        if self._active_process is not None:
            process.trace_ctx = self._active_process.trace_ctx
        return process

    # -- scheduling / running ----------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the schedule drains earlier, so repeated ``run(until=...)``
        calls observe monotonic time.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}; clock already at {self._now}"
            )
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)

    def run_until_complete(self, process: Process, limit: float = float("inf")) -> object:
        """Run until ``process`` finishes; return its value.

        Raises :class:`SimulationError` if the schedule drains or ``limit``
        is reached with the process still alive (deadlock guard).
        """
        while not process.triggered:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: schedule drained but {process.name!r} still alive"
                )
            if self._heap[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit} reached with {process.name!r} still alive"
                )
            self.step()
        return process.value
