"""The simulation event loop and clock."""

from __future__ import annotations

from heapq import heappush
from typing import Iterable, Optional

from repro.sim.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import RAW_WAIT, Process, ProcessGenerator
from repro.obs.recorder import NULL_RECORDER
from repro.sim.rng import RngRegistry
from repro.sim.wheel import _MAX_FREE, EventWheel
from repro.telemetry.registry import NULL_REGISTRY
from repro.trace.tracer import NULL_TRACER


class Simulator:
    """Owns the event wheel and the simulated clock.

    Time is a float in milliseconds (by convention of this project).  Events
    scheduled at the same instant are processed in schedule order (FIFO),
    which keeps runs fully deterministic.

    The schedule holds two kinds of entries: *events* (the public
    :class:`~repro.sim.events.Event` machinery) and *raw callbacks*
    (:meth:`call_soon` / :meth:`call_at`), the kernel's allocation-free
    path for one-shot continuations — process bootstraps and wakeups,
    fabric message delivery — that used to be modelled as throwaway
    events.  Both kinds share one ``(time, seq)`` sequence space, so their
    relative order is exactly what the old heap scheduler produced.
    """

    def __init__(self, seed: int = 0, tracer=None, metrics=None, obs=None):
        self._now = 0.0
        self._wheel = EventWheel()
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Failures of daemon processes, recorded instead of raised.
        self.daemon_failures: list[tuple[Process, BaseException]] = []
        #: Named deterministic RNG substreams.
        self.rng = RngRegistry(seed)
        #: Causal-trace collector (repro.trace); the shared no-op tracer
        #: unless one is attached, so hot paths can gate on tracer.active.
        self.tracer = (tracer if tracer is not None else NULL_TRACER).bind(self)
        #: Telemetry instrument registry (repro.telemetry); the shared
        #: no-op registry unless one is attached, so instrumentation
        #: sites can gate on metrics.active.
        self.metrics = (
            metrics if metrics is not None else NULL_REGISTRY
        ).bind(self)
        #: Flight recorder (repro.obs); the shared no-op recorder unless
        #: one is attached, so emission sites can gate on obs.active.
        self.obs = (obs if obs is not None else NULL_RECORDER).bind(self)

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def schedule_count(self) -> int:
        """Monotonic count of entries ever scheduled.

        Public so upper layers (the network fabric's same-tick delivery
        batching) can detect "nothing was scheduled in between" without
        touching kernel-private state.
        """
        return self._seq

    # -- event construction ----------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires after ``delay`` ms."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float):
        """Park the *active process* for ``delay`` ms: ``yield sim.sleep(d)``.

        The allocation-free twin of ``yield sim.timeout(d)`` for the
        overwhelmingly common case where the timeout's value is unused and
        nothing else waits on it: instead of a Timeout event plus callback
        registration, one raw wheel entry re-enters the process's step at
        exactly the ``(time, seq)`` slot the Timeout would have occupied.
        Only valid as a direct ``yield`` target inside a process.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        process = self._active_process
        if process is None:
            raise SimulationError("sleep() outside a running process")
        seq = self._seq
        self._seq = seq + 1
        now = self._now
        when = now + delay
        # Inlined EventWheel.push; the wakeup receives its own entry as
        # the staleness token (entry[4] = entry), so an interrupt can
        # orphan the sleep without cancelling the wheel entry.
        wheel = self._wheel
        free = wheel._free
        if free:
            entry = free.pop()
            entry[0] = when
            entry[1] = seq
            entry[3] = process._sleep_wake
            entry[4] = entry
        else:
            entry = [when, seq, None, process._sleep_wake, None]
            entry[4] = entry
        wheel._live += 1
        process._sleep_token = entry
        if when == now:
            wheel._imm.append(entry)
            return RAW_WAIT
        day = int(when * wheel._inv_width)
        buckets = wheel._buckets
        try:
            heappush(buckets[day], entry)
        except KeyError:
            buckets[day] = [entry]
            heappush(wheel._days, day)
        return RAW_WAIT

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing once all ``events`` have fired successfully."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def spawn(
        self, generator: ProcessGenerator, name: str = "", daemon: bool = False
    ) -> Process:
        """Start a new process from ``generator``.

        The child inherits the spawner's TraceContext, so work forked from
        inside a traced operation (handlers, invalidations, write-through
        processes) stays attached to that operation's span tree.
        """
        process = Process(self, generator, name=name, daemon=daemon)
        if self._active_process is not None:
            process.trace_ctx = self._active_process.trace_ctx
        return process

    # -- scheduling / running ----------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        seq = self._seq
        self._seq = seq + 1
        now = self._now
        wheel = self._wheel
        if delay == 0.0:
            # Fast lane: the common zero-delay schedule (succeed/fail at
            # the current instant) skips all bucket machinery.
            free = wheel._free
            if free:
                entry = free.pop()
                entry[0] = now
                entry[1] = seq
                entry[2] = event
            else:
                entry = [now, seq, event, None, None]
            wheel._live += 1
            wheel._imm.append(entry)
        else:
            wheel.push(now + delay, seq, now, event=event)

    def call_soon(self, fn, arg=None) -> list:
        """Schedule ``fn(arg)`` at the current instant (after pending work).

        The raw-callback twin of creating and immediately succeeding an
        event: one schedule slot, zero allocations beyond the recycled
        wheel entry.  Returns the wheel entry (a cancellation handle for
        :meth:`cancel`).
        """
        seq = self._seq
        self._seq = seq + 1
        wheel = self._wheel
        free = wheel._free
        if free:
            entry = free.pop()
            entry[0] = self._now
            entry[1] = seq
            entry[3] = fn
            entry[4] = arg
        else:
            entry = [self._now, seq, None, fn, arg]
        wheel._live += 1
        wheel._imm.append(entry)
        return entry

    def call_at(self, when: float, fn, arg=None) -> list:
        """Schedule ``fn(arg)`` at absolute time ``when`` (>= now)."""
        now = self._now
        if when < now:
            raise SimulationError(
                f"call_at({when}) in the past; clock at {now}")
        seq = self._seq
        self._seq = seq + 1
        # Inlined EventWheel.push (this is the fabric/timer hot path).
        wheel = self._wheel
        free = wheel._free
        if free:
            entry = free.pop()
            entry[0] = when
            entry[1] = seq
            entry[3] = fn
            entry[4] = arg
        else:
            entry = [when, seq, None, fn, arg]
        wheel._live += 1
        if when == now:
            wheel._imm.append(entry)
            return entry
        day = int(when * wheel._inv_width)
        buckets = wheel._buckets
        try:
            heappush(buckets[day], entry)
        except KeyError:
            buckets[day] = [entry]
            heappush(wheel._days, day)
        return entry

    def cancel(self, entry: list) -> None:
        """Cancel a raw-callback entry returned by call_soon/call_at."""
        self._wheel.cancel(entry)

    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` if none."""
        return self._wheel.peek()

    def step(self) -> None:
        """Process exactly one schedule entry."""
        wheel = self._wheel
        entry = wheel.pop(self._now)
        if entry is None:
            raise SimulationError("step() on an empty schedule")
        when = entry[0]
        if when > self._now:
            self._now = when
        event, fn, arg = entry[2], entry[3], entry[4]
        wheel.recycle(entry)
        if event is not None:
            event._process()
        else:
            fn(arg)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the schedule drains earlier, so repeated ``run(until=...)``
        calls observe monotonic time.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}; clock already at {self._now}"
            )
        wheel = self._wheel
        imm = wheel._imm
        imm_popleft = imm.popleft
        advance = wheel.advance
        free = wheel._free
        while True:
            # Current-instant lane first: FIFO == (time, seq) order here.
            # Entry recycling is inlined (this loop dispatches hundreds of
            # thousands of entries per benchmark); the freelist invariant
            # is that entries return with [2]=[3]=[4]=None, so each branch
            # blanks exactly the fields its entry kind uses.
            if imm:
                entry = imm_popleft()
                event = entry[2]
                if event is not None:
                    wheel._live -= 1
                    entry[2] = None
                    if len(free) < _MAX_FREE:
                        free.append(entry)
                    event._process()
                    continue
                fn = entry[3]
                if fn is not None:
                    arg = entry[4]
                    wheel._live -= 1
                    entry[3] = None
                    entry[4] = None
                    if len(free) < _MAX_FREE:
                        free.append(entry)
                    fn(arg)
                    continue
                # Lazily-cancelled entry draining through (already blanked).
                if len(free) < _MAX_FREE:
                    free.append(entry)
                continue
            advanced = advance(until)
            if advanced is None:
                break
            self._now = advanced
        if until is not None:
            self._now = max(self._now, until)

    def run_until_complete(self, process: Process, limit: float = float("inf")) -> object:
        """Run until ``process`` finishes; return its value.

        Raises :class:`SimulationError` if the schedule drains or ``limit``
        is reached with the process still alive (deadlock guard).
        """
        while not process.triggered:
            if not self._wheel:
                raise SimulationError(
                    f"deadlock: schedule drained but {process.name!r} still alive"
                )
            if self._wheel.peek() > limit:
                raise SimulationError(
                    f"time limit {limit} reached with {process.name!r} still alive"
                )
            self.step()
        return process.value
