"""Shared resources for simulation processes.

- :class:`Resource`: a counting semaphore with a FIFO wait queue; models
  CPU cores, per-key locks, bounded concurrency.
- :class:`Store`: an unbounded FIFO of items with blocking ``get``; models
  mailboxes and work queues.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.sim.errors import SimulationError
from repro.sim.events import Event
from repro.sim.process import RAW_WAIT

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


class Resource:
    """Counting semaphore with FIFO granting.

    ``acquire()`` returns an event that fires when a slot is granted; the
    holder must later call ``release()`` exactly once per grant.  Use
    :meth:`cancel` to withdraw a not-yet-granted request (e.g. after a
    timeout won a race against the grant).
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        # acquire() runs tens of thousands of times per benchmark; the
        # grant-event name is interned once here instead of per call.
        self._grant_name = "acquire:" + name
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    def register_gauges(self, registry, prefix: str, **labels) -> None:
        """Register pull gauges for this resource's occupancy and queue.

        Intended for long-lived, low-cardinality resources (a node's
        core pool) — not per-key locks, whose label cardinality would
        swamp every export.  Callbacks read the counters the resource
        already maintains, so acquire/release hot paths pay nothing.
        """
        if not registry.active:
            return
        labelnames = tuple(sorted(labels))
        registry.gauge(
            f"{prefix}_in_use", "Granted slots.", labelnames=labelnames,
        ).set_callback(lambda: self._in_use, **labels)
        registry.gauge(
            f"{prefix}_queue_length", "Requests waiting for a slot.",
            labelnames=labelnames,
        ).set_callback(lambda: len(self._waiters), **labels)
        registry.gauge(
            f"{prefix}_utilization", "Granted slots / capacity.",
            labelnames=labelnames,
        ).set_callback(lambda: self._in_use / self.capacity, **labels)

    def acquire(self) -> Event:
        """Request a slot; the returned event fires when granted."""
        grant = Event(self.sim, name=self._grant_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed()
        else:
            self._waiters.append(grant)
        return grant

    def acquire_wait(self):
        """Like :meth:`acquire` for the ``yield res.acquire_wait()`` idiom.

        When a slot is free, the granted event's only job is to resume the
        requesting process one schedule slot later — so this fast path
        skips the event entirely and parks the process on a raw wheel
        entry in exactly the slot the grant's ``succeed()`` would have
        used.  Contended requests still return a queued grant event.
        The caller must yield the result immediately and must not need a
        cancellation handle (``release()`` works as usual).
        """
        if self._in_use < self.capacity:
            self._in_use += 1
            sim = self.sim
            process = sim._active_process
            token = sim.call_soon(process._sleep_wake)
            token[4] = token
            process._sleep_token = token
            return RAW_WAIT
        grant = Event(self.sim, name=self._grant_name)
        self._waiters.append(grant)
        return grant

    def cancel(self, grant: Event) -> None:
        """Withdraw a pending request, or release an already-granted one."""
        if grant.triggered:
            self.release()
            return
        try:
            self._waiters.remove(grant)
        except ValueError:
            raise SimulationError("cancel() of a request not waiting here") from None

    def release(self) -> None:
        """Return a slot, granting it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter; _in_use unchanged.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event whose value is the next
    item, firing immediately when one is available.
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._get_name = "get:" + name
        self._items: deque[object] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Deposit ``item``, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event yielding the next item (FIFO)."""
        request = Event(self.sim, name=self._get_name)
        if self._items:
            request.succeed(self._items.popleft())
        else:
            self._getters.append(request)
        return request

    def drain(self) -> list[object]:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items
