"""Deterministic named random-number streams.

Every simulated component draws randomness from its own named substream so
that adding a component (or reordering draws inside one) never perturbs the
others.  Substreams are derived from the root seed and the stream name.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Registry of named, independently-seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def __contains__(self, name: str) -> bool:
        return name in self._streams
