"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies ``cause`` to describe why; the
    interrupted process may catch the exception and continue.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interrupt(cause={self.cause!r})"


class StopProcess(Exception):
    """Internal sentinel used to terminate a process early."""
