"""The calendar-queue / event-wheel scheduler backing the simulator.

The wheel stores *entries*: small mutable lists ``[time, seq, event, fn,
arg]``.  Exactly one of ``event`` / ``fn`` is set: event entries dispatch
``event._process()``, callback entries dispatch ``fn(arg)`` (the kernel's
allocation-free fast path for process wakeups, bootstraps and fabric
deliveries).  Entries are recycled through a freelist — they are
kernel-private, never escape the scheduler, and are dead the moment they
are popped, so reuse is safe.

Ordering contract (the whole point): entries pop in strictly increasing
``(time, seq)`` order, exactly like the ``heapq`` scheduler this replaced.
The PR 5 bench gate holds the simulator to byte-identical counters, so the
wheel must be a drop-in *ordering* replacement, only faster:

- ``_imm`` — the *current-instant lane*: a plain FIFO of entries whose time
  equals the simulator's current clock.  Most events in a busy simulation
  (zero-delay succeeds, process wakeups, same-node message hand-offs) are
  scheduled for "now"; they bypass all heap machinery.  FIFO equals
  (time, seq) order here because every entry in the lane shares one
  timestamp and sequence numbers are handed out monotonically.
- ``_buckets`` — the wheel proper: future entries hashed by time slot
  (``floor(time / width)``), each slot a small binary heap.
- ``_days`` — a heap of occupied slot indexes: the fallback that makes
  far-future timers (RPC deadlines thousands of ms out) cheap without a
  bounded horizon or entry migration.

Slot granularity is ``width`` ms; within a slot the per-slot heap orders by
(time, seq), across slots the slot index orders by time (slots are disjoint
half-open intervals), so the global pop order is exact.

Cancellation is lazy: :meth:`cancel` blanks the entry in place and it is
skipped when its slot comes up, mirroring how stale one-shot timers have
always drained through the old heap as no-ops.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Optional

__all__ = ["EventWheel"]

#: Freelist bound — enough to absorb steady-state churn without pinning
#: memory after a large burst.
_MAX_FREE = 8192


class EventWheel:
    """Hierarchical calendar queue ordered by ``(time, seq)``.

    ``now`` must be supplied by the caller on ``push``/``pop`` (the
    simulator owns the clock); the wheel itself never advances time, it
    only reports, via :meth:`advance`, the timestamp the next entries
    carry.
    """

    __slots__ = ("width", "_inv_width", "_imm", "_buckets", "_days",
                 "_free", "_live")

    def __init__(self, width: float = 1.0):
        if width <= 0:
            raise ValueError(f"slot width must be positive, got {width}")
        self.width = width
        self._inv_width = 1.0 / width
        #: FIFO lane of entries scheduled for the current instant.
        self._imm: deque = deque()
        #: slot index -> heap of entries within that time slot.
        self._buckets: dict = {}
        #: heap of occupied slot indexes.
        self._days: list = []
        self._free: list = []
        #: Live (non-cancelled) entries — the schedule-drained check.
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # -- scheduling --------------------------------------------------------
    def push(self, time: float, seq: int, now: float,
             event=None, fn=None, arg=None) -> list:
        """Insert an entry; returns it (the cancellation handle)."""
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = time
            entry[1] = seq
            entry[2] = event
            entry[3] = fn
            entry[4] = arg
        else:
            entry = [time, seq, event, fn, arg]
        self._live += 1
        if time == now:
            self._imm.append(entry)
            return entry
        day = int(time * self._inv_width)
        buckets = self._buckets
        try:
            heappush(buckets[day], entry)
        except KeyError:
            buckets[day] = [entry]
            heappush(self._days, day)
        return entry

    def cancel(self, entry: list) -> None:
        """Lazily cancel ``entry``: it is skipped when its slot drains."""
        if entry[2] is None and entry[3] is None:
            return  # already cancelled (or recycled — caller bug, benign)
        entry[2] = entry[3] = entry[4] = None
        self._live -= 1

    # -- draining ----------------------------------------------------------
    def peek(self) -> float:
        """Timestamp of the next live entry, or ``inf`` when drained."""
        for entry in self._imm:
            if entry[2] is not None or entry[3] is not None:
                return entry[0]
        days, buckets = self._days, self._buckets
        while days:
            day = days[0]
            bucket = buckets[day]
            while bucket:
                head = bucket[0]
                if head[2] is not None or head[3] is not None:
                    return head[0]
                heappop(bucket)
                self._recycle(head)
            heappop(days)
            del buckets[day]
        return float("inf")

    def advance(self, limit: Optional[float] = None) -> Optional[float]:
        """Refill the current-instant lane from the next occupied slot.

        Returns the timestamp the refilled entries share (the new "now"),
        or None when the wheel is drained — or, with ``limit``, when the
        next entries lie strictly beyond it (nothing is moved then).
        Only call with the lane empty: entries already in the lane belong
        to the old instant and must pop first.
        """
        days, buckets, imm = self._days, self._buckets, self._imm
        while days:
            day = days[0]
            bucket = buckets[day]
            # Find the first live head, discarding cancelled entries.
            while bucket:
                head = bucket[0]
                if head[2] is not None or head[3] is not None:
                    break
                heappop(bucket)
                self._recycle(head)
            if not bucket:
                heappop(days)
                del buckets[day]
                continue
            when = bucket[0][0]
            if limit is not None and when > limit:
                return None
            # Move every entry at exactly `when` into the FIFO lane; their
            # heap order is (time, seq) order, and entries pushed later at
            # this instant carry larger seqs and append behind them.
            while bucket and bucket[0][0] == when:
                imm.append(heappop(bucket))
            if not bucket:
                heappop(days)
                del buckets[day]
            return when
        return None

    def pop(self, now: float) -> Optional[list]:
        """Remove and return the next live entry in (time, seq) order.

        ``now`` is the simulator clock; entries popped from a future slot
        report their own (larger) timestamp in ``entry[0]`` — the caller
        advances its clock to match.  Returns None when drained.  The
        returned entry must be handed back via :meth:`recycle` after
        dispatch.
        """
        imm = self._imm
        while True:
            if imm:
                entry = imm.popleft()
                if entry[2] is None and entry[3] is None:
                    self._free_entry(entry)
                    continue
                self._live -= 1
                return entry
            if self.advance() is None:
                return None

    def recycle(self, entry: list) -> None:
        """Return a dispatched entry to the freelist."""
        entry[2] = entry[3] = entry[4] = None
        free = self._free
        if len(free) < _MAX_FREE:
            free.append(entry)

    # -- internals ---------------------------------------------------------
    def _recycle(self, entry: list) -> None:
        # Cancelled entry being discarded during a drain: `cancel` already
        # decremented the live count and blanked the payload fields.
        free = self._free
        if len(free) < _MAX_FREE:
            free.append(entry)

    def _free_entry(self, entry: list) -> None:
        # Freelist invariant: entries arrive with [2]=[3]=[4]=None, so the
        # push fast paths only have to set the fields they use.
        free = self._free
        if len(free) < _MAX_FREE:
            free.append(entry)
