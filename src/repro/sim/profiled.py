"""A profiled drop-in for ``Simulator.run`` (kernel side).

:func:`profiled_run` dispatches schedule entries exactly like
:meth:`Simulator.run` — same (time, seq) pop order, same clock
advancement, same dispatch semantics — while letting a caller-supplied
pair of hooks attribute the wall cost of each dispatch:

* ``classify(event, fn) -> key`` runs *before* dispatch and maps the
  entry to an attribution bucket (the obs layer maps it to the repo
  package whose code resumes);
* ``observe(key, seconds)`` runs *after* dispatch with the measured
  duration.

The wall clock itself is injected (``clock``) so this module stays free
of wall-time imports; :mod:`repro.obs.selfprof` passes
``time.perf_counter``.  Simulated behaviour is identical to the plain
run loop — only the measurement differs — so a profiled run produces
the same counters, traces and flight recordings as an unprofiled one.

This lives in the ``sim`` package because the loop must touch kernel
internals (``_now``, the wheel entry layout); SIM03 keeps that privilege
out of every other layer.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.errors import SimulationError

__all__ = ["profiled_run"]


def profiled_run(
    sim,
    clock: Callable[[], float],
    classify: Callable[[object, object], str],
    observe: Callable[[str, float], None],
    until: Optional[float] = None,
) -> None:
    """Run ``sim`` like ``Simulator.run(until=...)`` with per-dispatch hooks."""
    if until is not None and until < sim._now:
        raise SimulationError(
            f"cannot run until {until}; clock already at {sim._now}")
    wheel = sim._wheel
    while True:
        if until is not None and wheel.peek() > until:
            break
        entry = wheel.pop(sim._now)
        if entry is None:
            break
        when = entry[0]
        if when > sim._now:
            sim._now = when
        event, fn, arg = entry[2], entry[3], entry[4]
        wheel.recycle(entry)
        key = classify(event, fn)
        begin = clock()
        if event is not None:
            event._process()
        else:
            fn(arg)
        observe(key, clock() - begin)
    if until is not None and until > sim._now:
        sim._now = until
