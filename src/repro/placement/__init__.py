"""Communication-aware function placement (paper Section IV-B)."""

from repro.placement.pct import CommAwarePlacement, ProducerConsumerTable

__all__ = ["CommAwarePlacement", "ProducerConsumerTable"]
