"""The Producer-Consumer Table and the placement policy built on it.

Concord's coherence messages reveal which functions communicate: when the
home agent serves a remote read of a key recently written by a different
function on a different node, that is a producer-consumer edge.  The PCT
accumulates these edges — entirely transparently, without inspecting any
function code — and the placement policy co-locates *paired* functions on
the same node so their hand-offs become local cache hits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.faas.platform import PlacementPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.concord import ConcordSystem
    from repro.faas.platform import DeployedApp, FaasPlatform


class ProducerConsumerTable:
    """Counts producer->consumer edges observed in coherence traffic."""

    def __init__(self, min_observations: int = 3):
        self.min_observations = min_observations
        self._edges: dict[tuple, int] = {}

    def observe(self, producer_fn: str, consumer_fn: str) -> None:
        """Record one observed hand-off between two functions."""
        edge = (producer_fn, consumer_fn)
        self._edges[edge] = self._edges.get(edge, 0) + 1

    def attach(self, concord: "ConcordSystem") -> "ProducerConsumerTable":
        """Subscribe to a Concord system's coherence observations."""
        concord.pct_observer = self.observe
        return self

    def count(self, producer_fn: str, consumer_fn: str) -> int:
        return self._edges.get((producer_fn, consumer_fn), 0)

    def paired_functions(self, function: str) -> set:
        """Functions frequently communicating with ``function`` (either
        direction), i.e. the paper's *Paired* functions."""
        paired = set()
        for (producer, consumer), count in self._edges.items():
            if count < self.min_observations:
                continue
            if producer == function:
                paired.add(consumer)
            elif consumer == function:
                paired.add(producer)
        return paired

    def edges(self) -> dict:
        return dict(self._edges)


class CommAwarePlacement(PlacementPolicy):
    """Place new function instances next to their paired functions.

    Falls back to the default least-loaded placement when the PCT knows
    nothing about the function — but then prefers a node with room for
    the instance *plus* a paired instance ("anticipates the resource
    needs of a Paired function"), which the default policy approximates
    by choosing the least-loaded node anyway.
    """

    def __init__(self, pct: ProducerConsumerTable):
        self.pct = pct

    def place(self, platform: "FaasPlatform", app: "DeployedApp",
              function: str) -> object:
        paired = self.pct.paired_functions(function)
        if paired:
            hosts = [
                node
                for node in platform.cluster.alive_nodes()
                for pair_fn in sorted(paired)
                if node.containers_of(app.name, pair_fn)
            ]
            if hosts:
                return min(hosts, key=lambda n: n.load)
        return super().place(platform, app, function)
