"""Figure 9: invalidation messages sent per write operation.

Paper: averaged across applications, a write causes 1.2 invalidations on
average with a maximum of 4.9 (on 16 nodes) — invalidation traffic stays
modest because sharer sets are small (Table I).
"""

from __future__ import annotations

from repro.experiments.runner import MixedRunConfig, run_mixed_workload
from repro.experiments.tables import ExperimentResult


def run(scale: float = 1.0, seed: int = 113, num_nodes: int = 16) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 9",
        title="Invalidation messages per write in Concord",
        columns=["app", "avg_invalidations", "max_invalidations"],
        note="Paper: average 1.2, maximum 4.9 across apps on 16 nodes.",
    )
    config = MixedRunConfig(
        scheme="concord", num_nodes=num_nodes, cores_per_node=2,
        utilization=0.5,
        duration_ms=4000.0 * scale, warmup_ms=1500.0 * scale,
        seed=seed,
    )
    outcome = run_mixed_workload(config)
    averages, maxima = [], []
    for app, access in outcome.per_app_access.items():
        histogram = access.invalidations_per_write
        if histogram.count == 0:
            continue
        averages.append(histogram.mean)
        maxima.append(histogram.max)
        result.data.append({
            "app": app,
            "avg_invalidations": histogram.mean,
            "max_invalidations": histogram.max,
        })
    if averages:
        result.data.append({
            "app": "Average",
            "avg_invalidations": sum(averages) / len(averages),
            "max_invalidations": sum(maxima) / len(maxima),
        })
    return result
