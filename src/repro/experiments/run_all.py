"""Regenerate the paper's entire evaluation in one command.

Usage::

    python -m repro.experiments.run_all [--scale 1.0] [--only fig07,tab1]
    python -m repro.experiments.run_all --jobs 4 [--journal sweep.jsonl]
    python -m repro.experiments.run_all --list

Prints every table/figure as ASCII (the same output the benchmarks show)
and a final summary with per-experiment wall time.

Each experiment runs as a :class:`repro.bench.JobSpec`, so ``--jobs N``
fans the sweep out over N spawn workers with byte-identical
per-experiment output (every experiment is seeded and hash-seed
independent, and results are printed in the fixed experiment order
regardless of completion order).  ``--journal PATH`` checkpoints
completed experiments: an interrupted sweep rerun with the same journal
skips everything that already finished.

A failing experiment no longer kills the sweep: the remaining
experiments still run, failures are summarized at the end, and the exit
status is nonzero.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import JobSpec, run_jobs
from repro.experiments import (
    char_reads,
    fig01_breakdown,
    fig03_version_vs_data,
    fig07_latency,
    fig08_throughput,
    fig09_invalidations,
    fig10_cas,
    fig11_write_scaling,
    fig12_memory,
    fig13_churn,
    fig14_cache_size,
    fig15_transactions,
    fig16_placement,
    fig17_apta,
    fig18_availability,
    fig19_topology,
    fig20_scheme_shootout,
    tab1_sharers,
    tab3_read_mix,
    verify_protocol,
)
from repro.experiments.ablations import (
    run_estate,
    run_faast_annotations,
    run_parallel_inv,
    run_virtual_nodes,
)

#: name -> entry point (ordered roughly by cost).
EXPERIMENTS = {
    "fig01": fig01_breakdown.run,
    "fig03": fig03_version_vs_data.run,
    "char_reads": char_reads.run,
    "verify": verify_protocol.run,
    "fig11": fig11_write_scaling.run,
    "ablation_estate": run_estate,
    "ablation_parallel_inv": run_parallel_inv,
    "ablation_virtual_nodes": run_virtual_nodes,
    "ablation_faast_annotations": run_faast_annotations,
    "fig09": fig09_invalidations.run,
    "fig10": fig10_cas.run,
    "fig12": fig12_memory.run,
    "tab3": tab3_read_mix.run,
    "tab1": tab1_sharers.run,
    "fig14": fig14_cache_size.run,
    "fig07": fig07_latency.run,
    "fig13": fig13_churn.run,
    "fig15": fig15_transactions.run,
    "fig16": fig16_placement.run,
    "fig17": fig17_apta.run,
    "fig18": fig18_availability.run,
    "fig19": fig19_topology.run,
    "fig20": fig20_scheme_shootout.run,
    "fig08": fig08_throughput.run,
}


def run_experiment(name: str, scale: float = 1.0) -> dict:
    """Bench-job target: one experiment by name, rendered to ASCII.

    Module-level so spawn workers can re-import it; the JSON return value
    is exactly what the driver prints, which is what makes serial and
    parallel sweeps byte-identical per experiment.
    """
    if name not in EXPERIMENTS:
        raise ValueError(f"unknown experiment {name!r}")
    result = EXPERIMENTS[name](scale=scale)
    return {"name": name, "rendered": result.render()}


def _specs(names, scale: float) -> list:
    return [
        JobSpec(
            name=name,
            target="repro.experiments.run_all:run_experiment",
            args={"name": name, "scale": scale},
        )
        for name in names
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate every table and figure of the Concord paper.")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="duration/request scale (default 1.0)")
    parser.add_argument("--only", type=str, default=None,
                        help="comma-separated experiment names")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes (default 1 = "
                             "in-process serial)")
    parser.add_argument("--journal", type=str, default=None,
                        help="JSONL checkpoint: completed experiments are "
                             "skipped when the sweep is rerun")
    parser.add_argument("--list", action="store_true",
                        help="list experiment names and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    selected = list(EXPERIMENTS)
    if args.only:
        selected = [name.strip() for name in args.only.split(",")]
        unknown = [n for n in selected if n not in EXPERIMENTS]
        if unknown:
            parser.error(
                f"unknown experiments: {', '.join(unknown)}\n"
                f"valid names: {', '.join(EXPERIMENTS)}")

    results = run_jobs(
        _specs(selected, args.scale),
        jobs=args.jobs,
        journal=args.journal,
    )

    for result in results:
        if result.ok:
            print(result.value["rendered"])
            print()

    print("=" * 60)
    print(f"{'experiment':28s} {'wall time':>12s}")
    failures = []
    total_s = 0.0
    for result in results:
        if result.ok:
            cached = "  (journal)" if result.cached else ""
            print(f"{result.name:28s} {result.wall_time_s:10.1f} s{cached}")
            total_s += result.wall_time_s
        else:
            failures.append(result)
            print(f"{result.name:28s} {'FAILED':>12s}")
    print(f"{'total':28s} {total_s:10.1f} s")

    if failures:
        print()
        print(f"{len(failures)} experiment(s) failed:")
        for result in failures:
            print(f"  {result.name}: {result.status} after "
                  f"{result.attempts} attempt(s): {result.error}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
