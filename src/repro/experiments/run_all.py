"""Regenerate the paper's entire evaluation in one command.

Usage::

    python -m repro.experiments.run_all [--scale 1.0] [--only fig07,tab1]
    python -m repro.experiments.run_all --list

Prints every table/figure as ASCII (the same output the benchmarks show)
and a final summary with per-experiment wall time.
"""

from __future__ import annotations

import argparse
import sys

# Wall-clock here is driver UX (per-experiment elapsed time in the final
# summary), never simulation input — exempt from the determinism rule.
import time  # noqa: DET01

from repro.experiments import (
    char_reads,
    fig01_breakdown,
    fig03_version_vs_data,
    fig07_latency,
    fig08_throughput,
    fig09_invalidations,
    fig10_cas,
    fig11_write_scaling,
    fig12_memory,
    fig13_churn,
    fig14_cache_size,
    fig15_transactions,
    fig16_placement,
    fig17_apta,
    fig18_availability,
    tab1_sharers,
    tab3_read_mix,
    verify_protocol,
)
from repro.experiments.ablations import (
    run_estate,
    run_faast_annotations,
    run_parallel_inv,
    run_virtual_nodes,
)

#: name -> entry point (ordered roughly by cost).
EXPERIMENTS = {
    "fig01": fig01_breakdown.run,
    "fig03": fig03_version_vs_data.run,
    "char_reads": char_reads.run,
    "verify": verify_protocol.run,
    "fig11": fig11_write_scaling.run,
    "ablation_estate": run_estate,
    "ablation_parallel_inv": run_parallel_inv,
    "ablation_virtual_nodes": run_virtual_nodes,
    "ablation_faast_annotations": run_faast_annotations,
    "fig09": fig09_invalidations.run,
    "fig10": fig10_cas.run,
    "fig12": fig12_memory.run,
    "tab3": tab3_read_mix.run,
    "tab1": tab1_sharers.run,
    "fig14": fig14_cache_size.run,
    "fig07": fig07_latency.run,
    "fig13": fig13_churn.run,
    "fig15": fig15_transactions.run,
    "fig16": fig16_placement.run,
    "fig17": fig17_apta.run,
    "fig18": fig18_availability.run,
    "fig08": fig08_throughput.run,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate every table and figure of the Concord paper.")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="duration/request scale (default 1.0)")
    parser.add_argument("--only", type=str, default=None,
                        help="comma-separated experiment names")
    parser.add_argument("--list", action="store_true",
                        help="list experiment names and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    selected = list(EXPERIMENTS)
    if args.only:
        selected = [name.strip() for name in args.only.split(",")]
        unknown = [n for n in selected if n not in EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiments: {', '.join(unknown)}")

    timings = []
    for name in selected:
        start = time.perf_counter()
        result = EXPERIMENTS[name](scale=args.scale)
        elapsed = time.perf_counter() - start
        timings.append((name, elapsed))
        print(result.render())
        print()

    print("=" * 60)
    print(f"{'experiment':28s} {'wall time':>12s}")
    for name, elapsed in timings:
        print(f"{name:28s} {elapsed:10.1f} s")
    print(f"{'total':28s} {sum(t for _n, t in timings):10.1f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
