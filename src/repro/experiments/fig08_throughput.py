"""Figure 8: cluster throughput before SLO violation.

Throughput is the highest request rate the cluster sustains while the
applications' mean latencies stay within SLO = 5x their latency on an
unloaded cluster (the paper's definition).  Concord improves throughput
over OFC by 1.7x and over Faa$T by 1.8x on average.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.experiments.runner import (
    MixedRunConfig,
    run_mixed_workload,
    unloaded_latency,
)
from repro.experiments.tables import ExperimentResult

SCHEMES = ("ofc", "faast", "concord")
SLO_FACTOR = 5.0


def _within_slo(outcome, slo: dict) -> bool:
    """All apps completed (close to) their offered load within the SLO.

    Checking completions guards against survivorship bias past CPU
    saturation, where only the fast requests finish inside the window.
    """
    config = outcome.config
    offered_total = config.resolved_total_rps() * config.duration_ms / 1000.0
    completed_total = sum(s.completed for s in outcome.per_app.values())
    if completed_total < 0.75 * offered_total:
        return False  # saturated: work is piling up, not completing
    for app, stats in outcome.per_app.items():
        if stats.completed == 0:
            return False
        if stats.mean_latency_ms > slo[app]:
            return False
    return True


def max_sustained_rps(
    scheme: str, slo: dict, rps_grid: list, scale: float, seed: int,
    timelines: Optional[str] = None,
) -> float:
    """Largest grid point whose run satisfies every app's SLO.

    When ``timelines`` names a directory, every grid point additionally
    exports its telemetry timeline there as
    ``fig08_<scheme>_rps<rate>.jsonl`` (readable with ``repro-metrics``).
    """
    best = 0.0
    for rps in rps_grid:
        metrics = None
        if timelines is not None:
            metrics = str(Path(timelines) / f"fig08_{scheme}_rps{rps}.jsonl")
        config = MixedRunConfig(
            scheme=scheme, num_nodes=8, cores_per_node=4,
            utilization=None, total_rps=rps,
            # Fixed, scale-independent window: saturation only shows up
            # once queues have had a few seconds to build.
            duration_ms=5000.0,
            warmup_ms=1500.0,
            seed=seed,
            metrics=metrics,
        )
        outcome = run_mixed_workload(config)
        if _within_slo(outcome, slo):
            best = rps
        else:
            break
    return best


def run(scale: float = 1.0, seed: int = 109,
        timelines: Optional[str] = None) -> ExperimentResult:
    if timelines is not None:
        Path(timelines).mkdir(parents=True, exist_ok=True)
    result = ExperimentResult(
        experiment="Figure 8",
        title="Cluster throughput at SLO (5x unloaded latency)",
        columns=["scheme", "max_rps", "vs_ofc"],
        note="Paper: Concord sustains 1.7x OFC's and 1.8x Faa$T's throughput.",
    )
    # The SLO is a property of the application: 5x its unloaded latency on
    # the baseline (OFC) platform, applied identically to every scheme.
    slo = {
        app: SLO_FACTOR * latency
        for app, latency in unloaded_latency(
            "ofc", num_nodes=8, cores_per_node=4, seed=seed).items()
    }
    # CPU saturates around ~135 RPS on this scaled cluster; the grid spans
    # the knee and beyond so every scheme eventually violates.
    rps_grid = [60, 100, 115, 130, 145, 160, 175, 190, 210]
    sustained = {}
    for scheme in SCHEMES:
        sustained[scheme] = max_sustained_rps(
            scheme, slo, rps_grid, scale, seed, timelines=timelines)
    for scheme in SCHEMES:
        result.data.append({
            "scheme": scheme,
            "max_rps": sustained[scheme],
            "vs_ofc": (sustained[scheme] / sustained["ofc"]
                       if sustained["ofc"] else float("nan")),
        })
    return result
