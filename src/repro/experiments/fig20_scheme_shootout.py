"""Figure 20 (extension): scheme shootout across the consistency zoo.

Not a paper figure — the paper compares Concord against its published
baselines (OFC, Faa$T, Apta).  This run races the *entire* registered
scheme catalogue, including the production cache-consistency families
(write-through, write-behind, read-through TTL, causal), through two
cells each:

* **load** — the standard Poisson/Zipf mixed workload; we report
  throughput, latency, hit ratio, network cost, and the staleness
  actually observed (reads that returned a version older than the
  newest committed one, and the worst lag in milliseconds).
* **crash** — the canonical fault scenario (crash + restart + drop +
  delay + brownout); we report completion, write loss (write-behind's
  defining trade-off), and the scheme's own invariant verdict.

The consistency column comes straight off each scheme class — the
catalogue is the experiment's thesis: weaker consistency buys latency
and pays in staleness or crash loss, and every scheme's checker proves
it never pays more than it declared.

Crash cells run only for schemes that implement ``restart_instance``
(the coherence-domain rejoin hook); the others leave those columns
blank rather than pretend they have recovery semantics.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.experiments.runner import MixedRunConfig, run_mixed_workload
from repro.experiments.tables import ExperimentResult
from repro.faults.plan import FaultPlan
from repro.faults.scenario import run_fault_scenario
from repro.metrics.stats import OpKind
from repro.schemes import available_names
from repro.verify import check_scheme_invariants

#: The load cell's app mix (two profiles keep the cell fast while still
#: exercising cross-app interference on shared schemes).
APPS = ("SocNet", "TrainT")


def _distinct_schemes(schemes: dict) -> list:
    """Scheme objects deduped by identity (shared schemes map many->one)."""
    seen: list = []
    for scheme in schemes.values():
        if not any(scheme is s for s in seen):
            seen.append(scheme)
    return seen


def _staleness(system) -> tuple:
    """(stale_reads, max_stale_ms) from a scheme's read/write logs.

    Only schemes that keep the logs (read-through TTL) report them; a
    read is stale when a strictly newer version of its key was already
    committed, and its lag is the time since that commit.
    """
    reads = getattr(system, "read_log", None)
    writes = getattr(system, "write_log", None)
    if reads is None or writes is None:
        return 0, 0.0
    by_key: dict = {}
    for t_ms, key, version in writes:
        by_key.setdefault(key, []).append((version, t_ms))
    for log in by_key.values():
        log.sort()
    stale, max_lag = 0, 0.0
    for t_ms, _node, key, version in reads:
        log = by_key.get(key, ())
        index = bisect_left(log, (version + 1, float("-inf")))
        if index < len(log) and log[index][1] <= t_ms:
            stale += 1
            max_lag = max(max_lag, t_ms - log[index][1])
    return stale, max_lag


def _crash_plan(seed: int, num_nodes: int) -> FaultPlan:
    return FaultPlan.random(
        seed=seed, node_ids=[f"node{i}" for i in range(num_nodes)],
        horizon_ms=4000.0, crashes=1, restart=True,
        drops=1, delays=1, brownouts=1,
    )


def run(scale: float = 1.0, seed: int = 11) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 20",
        title="Scheme shootout: the consistency catalogue",
        columns=["scheme", "consistency", "completed", "mean_ms", "p99_ms",
                 "hit_ratio", "net_msgs", "stale_reads", "max_stale_ms",
                 "crash_completed", "crash_lost", "violations"],
        note="Extension run: every registered scheme under the standard "
             "Poisson/Zipf mix, then (restartable schemes only) under a "
             "randomized crash plan; 'violations' sums each scheme's own "
             "invariant checker over both cells and must be 0.",
    )
    num_nodes = 4
    crash_plan = _crash_plan(seed, 6)
    for name in available_names():
        config = MixedRunConfig(
            scheme=name, num_nodes=num_nodes, cores_per_node=4,
            apps=APPS, total_rps=40.0 * scale, utilization=None,
            duration_ms=2500.0 * scale, warmup_ms=800.0,
            drain_ms=1500.0, seed=seed,
        )
        outcome = run_mixed_workload(config)
        distinct = _distinct_schemes(outcome.schemes)
        violations: list = []
        stale_reads, max_stale = 0, 0.0
        for system in distinct:
            violations.extend(check_scheme_invariants(system))
            system_stale, system_lag = _staleness(system)
            stale_reads += system_stale
            max_stale = max(max_stale, system_lag)
        stats = outcome.access
        hits = (stats.count(OpKind.LOCAL_READ_HIT)
                + stats.count(OpKind.REMOTE_READ_HIT))
        row = {
            "scheme": name,
            "consistency": distinct[0].consistency or "?",
            "completed": sum(s.completed for s in outcome.per_app.values()),
            "mean_ms": outcome.mean_latency(),
            "p99_ms": max(s.p99_latency_ms for s in outcome.per_app.values()),
            "hit_ratio": hits / stats.reads if stats.reads else 0.0,
            "net_msgs": outcome.network_messages,
            "stale_reads": stale_reads,
            "max_stale_ms": max_stale,
        }
        if any(hasattr(s, "restart_instance") for s in distinct):
            crash = run_fault_scenario(
                crash_plan, seed=seed, num_nodes=6,
                duration_ms=4000.0 * scale, rps=25.0 * scale,
                scheme=name, settle_ms=3000.0,
            )
            violations.extend(crash.violations)
            row["crash_completed"] = crash.completed
            row["crash_lost"] = getattr(crash.system, "writes_lost", 0)
        row["violations"] = len(violations)
        result.data.append(row)
    return result
