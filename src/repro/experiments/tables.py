"""ASCII table rendering and the shared experiment-result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class ExperimentResult:
    """Uniform result of one experiment (rows + rendering)."""

    experiment: str
    title: str
    columns: list
    data: list = field(default_factory=list)   # list of dicts
    note: Optional[str] = None

    def rows(self) -> list:
        return list(self.data)

    def render(self) -> str:
        return render_table(
            f"{self.experiment}: {self.title}", self.columns, self.data,
            note=self.note,
        )


def render_table(
    title: str,
    columns: list,
    rows: Iterable[dict],
    note: Optional[str] = None,
) -> str:
    """Render ``rows`` (dicts) under ``columns`` (keys) as an ASCII table."""
    rows = list(rows)
    widths = {col: len(str(col)) for col in columns}
    rendered_rows = []
    for row in rows:
        rendered = {}
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                text = f"{value:.2f}"
            else:
                text = str(value)
            rendered[col] = text
            widths[col] = max(widths[col], len(text))
        rendered_rows.append(rendered)

    def line(char="-", joint="+"):
        return joint + joint.join(char * (widths[c] + 2) for c in columns) + joint

    out = [title, line("=")]
    out.append(
        "|" + "|".join(f" {str(c).ljust(widths[c])} " for c in columns) + "|")
    out.append(line())
    for rendered in rendered_rows:
        out.append(
            "|" + "|".join(
                f" {rendered[c].rjust(widths[c])} " for c in columns) + "|")
    out.append(line("="))
    if note:
        out.append(note)
    return "\n".join(out)
