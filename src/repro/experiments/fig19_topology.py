"""Figure 19 (extension): sharded-directory scale across topologies.

Not a paper figure — the paper's directory is flat (every key homes
directly on the member ring).  This run quantifies what the sharded
directory layer adds and costs: the same fixed-seed workload and the
same fault class (crash a directory home mid-load; partition a region
for the regional cell) run against each named topology preset, and we
compare completion, failover/re-home churn, and the coherence verdict.

The interesting contrasts:

* ``flat`` vs ``shard4`` — routing through shard leaders instead of
  per-key homes concentrates directory state; a single crash now takes
  out whole shards, not a hash-arc of keys.
* ``shard4`` vs ``shard4rep`` — replica chains turn the crash into a
  deterministic leader failover (mirror adoption) instead of a cold
  directory rebuild.
* ``shard4rep`` vs ``region2`` — the same protocol spread over two
  regions pays cross-region RTT on every remote hop and must also ride
  out a region partition.

Violations must be zero in every cell: sharding changes *where*
directory state lives, never *whether* it is coherent.
"""

from __future__ import annotations

from repro.experiments.tables import ExperimentResult
from repro.shard.topologies import (
    DURATION_MS,
    TOPOLOGIES,
    run_topology_scenario,
    smoke_plan,
)

#: Matrix order: flat first so the sharded rows read as deltas.
VARIANTS = ("flat", "shard4", "shard4rep", "region2")


def run(scale: float = 1.0, seed: int = 7) -> ExperimentResult:
    del scale  # The cells share one fixed shape; scaling would decouple
    #            them from the CI topology matrix they mirror.
    result = ExperimentResult(
        experiment="Figure 19",
        title="Sharded directory under faults, by topology",
        columns=["topology", "shards", "replication", "regions",
                 "completed", "failed", "completion_ratio",
                 "failovers", "rehomed", "violations"],
        note="Extension run: each topology preset under its canonical "
             "smoke plan (crash a shard leader; region2 also partitions "
             "a region); coherence violations must be 0 in every cell.",
    )
    for name in VARIANTS:
        topology = TOPOLOGIES[name]
        outcome = run_topology_scenario(name, seed=seed, plan=smoke_plan(name))
        total = outcome.completed + outcome.failed
        result.data.append({
            "topology": name,
            "shards": topology.shards or 0,
            "replication": topology.replication,
            "regions": topology.regions or 0,
            "completed": outcome.completed,
            "failed": outcome.failed,
            "completion_ratio": (outcome.completed / total if total
                                 else float("nan")),
            "failovers": outcome.shard_failovers,
            "rehomed": outcome.shards_rehomed,
            "violations": len(outcome.violations),
        })
    return result


#: Simulated milliseconds each cell covers (pre-settle), for reporting.
CELL_DURATION_MS = DURATION_MS
