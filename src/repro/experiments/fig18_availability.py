"""Figure 18 (extension): availability under injected node failures.

Not a paper figure — the paper argues (Section III-F) that Concord's
lazy, locally-acked recovery keeps the cache available through failures,
but never measures it.  This run quantifies the claim: a node crashes
mid-load and restarts later, and we compare Concord's ack-counted
recovery against a *lease-based* baseline (ZooKeeper-style session
expiry, as coordination-service-backed caches use): survivors hold their
read barriers for the full lease TTL instead of lifting them as soon as
every survivor has acked.

Reported per variant: completed/failed/rescheduled requests, completion
ratio, recovery count and the post-run coherence verdict (violations
must be zero — stale copies or directory entries pointing at the dead
node would falsify the recovery design, not just slow it down).
"""

from __future__ import annotations

from repro.experiments.tables import ExperimentResult
from repro.faults.plan import FaultPlan, NodeCrash, NodeRestart
from repro.faults.scenario import run_fault_scenario

#: Lease TTL for the baseline (a typical ZooKeeper session timeout).
LEASE_TTL_MS = 10_000.0

VARIANTS = (
    ("concord", None),
    ("lease", LEASE_TTL_MS),
)


def crash_restart_plan(duration_ms: float, node: str = "node1",
                       seed: int = 0) -> FaultPlan:
    """Crash ``node`` a third of the way in; restart it at two thirds."""
    return FaultPlan(events=(
        NodeCrash(at_ms=duration_ms / 3.0, node=node),
        NodeRestart(at_ms=duration_ms * 2.0 / 3.0, node=node),
    ), seed=seed)


def run(scale: float = 1.0, seed: int = 133) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 18",
        title="Availability under a crash + restart (Concord vs lease)",
        columns=["recovery", "completed", "failed", "rescheduled",
                 "completion_ratio", "recoveries", "violations"],
        note="Extension run: ack-counted recovery (Concord, Section III-F) "
             "vs lease-based barriers; coherence violations must be 0.",
    )
    duration = 12_000.0 * scale
    for name, lease in VARIANTS:
        plan = crash_restart_plan(duration, seed=seed)
        outcome = run_fault_scenario(
            plan, seed=seed, num_nodes=6, duration_ms=duration,
            # The lease scales with the run so the TTL always expires
            # inside the measured window (otherwise the comparison would
            # end mid-recovery).
            rps=40.0, recovery_lease_ms=lease * scale if lease else None,
        )
        total = outcome.completed + outcome.failed
        result.data.append({
            "recovery": name,
            "completed": outcome.completed,
            "failed": outcome.failed,
            "rescheduled": outcome.rescheduled,
            "completion_ratio": (outcome.completed / total if total
                                 else float("nan")),
            "recoveries": outcome.recoveries_completed,
            "violations": len(outcome.violations),
        })
    return result
