"""Figure 3: time to fetch+check a version number vs fetching the data.

The paper measures (on 10 GbE with gRPC) that a version probe costs about
the same as fetching the data itself for objects of 64 KB or less — only
for larger objects is the probe cheaper.  This experiment measures both
operations over the simulated fabric for a sweep of payload sizes.
"""

from __future__ import annotations

from repro.config import KB, LatencyModel, SimConfig
from repro.cluster import Cluster
from repro.experiments.tables import ExperimentResult
from repro.net.rpc import DEFAULT_RPC_TIMEOUT_MS, Endpoint, Reply
from repro.sim import Simulator

SIZES = (1 * KB, 4 * KB, 12 * KB, 32 * KB, 64 * KB, 256 * KB, 1024 * KB)


def run(scale: float = 1.0, seed: int = 103) -> ExperimentResult:
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, SimConfig(num_nodes=2))
    latency = cluster.config.latency

    server = Endpoint(cluster.network, "node1", "bench",
                      service_time_ms=latency.agent_service_ms)

    def version_handler(endpoint, src, args):
        return Reply(42, size_bytes=8)
        yield  # pragma: no cover

    def data_handler(endpoint, src, size):
        return Reply("blob", size_bytes=size)
        yield  # pragma: no cover

    # Called through measure(method, ...) below, invisible to the static
    # RPC-surface match.
    server.register_handler("version", version_handler)  # noqa: PRO01
    server.register_handler("fetch", data_handler)
    client = Endpoint(cluster.network, "node0", "bench")

    def measure(method, args, size):
        def op(sim):
            start = sim.now
            yield from client.call("node1/bench", method, args,
                                   size_bytes=size,
                                   timeout=DEFAULT_RPC_TIMEOUT_MS)
            return sim.now - start
        return sim.run_until_complete(sim.spawn(op(sim)), limit=sim.now + 60_000.0)

    result = ExperimentResult(
        experiment="Figure 3",
        title="Version fetch+check vs data fetch time by payload size",
        columns=["size_kb", "version_ms", "data_ms", "data/version"],
        note="Paper: comparable for <=64KB; version probe wins only above.",
    )
    for size in SIZES:
        version_ms = measure("version", "key", 8)
        data_ms = measure("fetch", size, 8)
        result.data.append({
            "size_kb": size // KB,
            "version_ms": version_ms,
            "data_ms": data_ms,
            "data/version": data_ms / version_ms,
        })
    return result
