"""Figure 15: transaction latency — Saga vs Beldi vs Concord.

Five transactional applications, each a 6-8 function chain, run with
concurrent clients contending on popular entities.  Concord detects
conflicts through coherence messages and rolls back by flushing caches;
Saga re-reads storage and compensates; Beldi logs every access.  Paper:
Concord cuts average latency by 54 % vs Saga and 20 % vs Beldi.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.experiments.tables import ExperimentResult
from repro.metrics import Histogram
from repro.schemes import build_scheme
from repro.sim import Simulator
from repro.storage import DataItem
from repro.txn import BeldiRunner, ConcordTxnRuntime, SagaRunner, TXN_APPS


def _preload(cluster, app):
    cluster.storage.preload({
        key: DataItem("init", 256) for key in app.keyspace()
    })


def _concord_body(app, entity):
    def body(txn):
        for step in app.steps:
            yield txn.runtime.sim.timeout(step.compute_ms)
            for template in step.reads:
                yield from txn.read(template.format(e=entity))
            for template in step.writes:
                key = template.format(e=entity)
                yield from txn.write(key, DataItem((key, "concord"), 256))
        return True
    return body


def _measure_system(system: str, app, clients: int, txns_per_client: int,
                    seed: int) -> float:
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, SimConfig(num_nodes=4))
    _preload(cluster, app)
    latencies = Histogram()

    if system == "concord":
        coord = CoordinationService(cluster.network, cluster.config)
        concord = build_scheme("concord", cluster, coord, app.name)
        runtime = ConcordTxnRuntime(concord)
    elif system == "saga":
        runtime = SagaRunner(cluster)
    else:
        runtime = BeldiRunner(cluster)

    rng = sim.rng.stream("txn-clients")

    def client(index: int):
        node = f"node{index % cluster.config.num_nodes}"
        for sequence in range(txns_per_client):
            yield sim.timeout(rng.expovariate(1 / 40.0))
            entity = rng.randrange(3)  # few entities -> real contention
            start = sim.now
            if system == "concord":
                yield from runtime.run(node, _concord_body(app, entity))
            else:
                yield from runtime.run(app, entity, writer_tag=f"c{index}")
            latencies.record(sim.now - start)

    for index in range(clients):
        sim.spawn(client(index), name=f"client{index}")
    sim.run(until=3_000_000.0)
    return latencies.mean


def run(scale: float = 1.0, seed: int = 125) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 15",
        title="Transaction latency: Saga vs Beldi vs Concord",
        columns=["app", "saga_ms", "beldi_ms", "concord_ms",
                 "vs_saga_pct", "vs_beldi_pct"],
        note="Paper: Concord reduces latency 54% vs Saga, 20% vs Beldi.",
    )
    clients = 4
    txns = max(2, int(6 * scale))
    vs_saga, vs_beldi = [], []
    for name, app in TXN_APPS.items():
        saga = _measure_system("saga", app, clients, txns, seed)
        beldi = _measure_system("beldi", app, clients, txns, seed)
        concord = _measure_system("concord", app, clients, txns, seed)
        saga_cut = 100.0 * (1 - concord / saga)
        beldi_cut = 100.0 * (1 - concord / beldi)
        vs_saga.append(saga_cut)
        vs_beldi.append(beldi_cut)
        result.data.append({
            "app": name, "saga_ms": saga, "beldi_ms": beldi,
            "concord_ms": concord,
            "vs_saga_pct": saga_cut, "vs_beldi_pct": beldi_cut,
        })
    result.data.append({
        "app": "Average", "saga_ms": "", "beldi_ms": "", "concord_ms": "",
        "vs_saga_pct": sum(vs_saga) / len(vs_saga),
        "vs_beldi_pct": sum(vs_beldi) / len(vs_beldi),
    })
    return result
