"""Ablations of Concord design choices (DESIGN.md section 5).

- E-state direct-to-storage writes on/off: the paper motivates the E state
  by the write-hop reduction (Section VII: 28.6 % fewer hops per write).
- Invalidations parallel vs serialized with the storage update: the paper
  argues parallelism hides invalidation latency (Section III-C2).
- Faa$T read-only annotations: with only 5 % of objects read-only, the
  annotations barely help (Related Work).
- Consistent-hashing virtual nodes: re-home volume and balance trade-off.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConsistentHashRing
from repro.experiments.runner import MixedRunConfig, run_mixed_workload
from repro.experiments.tables import ExperimentResult
from repro.schemes import build_scheme
from repro.sim import Simulator
from repro.storage import DataItem


def run_estate(scale: float = 1.0, seed: int = 201) -> ExperimentResult:
    """Writes with and without the E-state storage-direct fast path."""
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, SimConfig(num_nodes=4))
    coord = CoordinationService(cluster.network, cluster.config)
    result = ExperimentResult(
        experiment="Ablation: E-state writes",
        title="Repeated writes by one node, with/without E-state bypass",
        columns=["variant", "write_ms", "coherence_msgs"],
        note="The E state exists to cut hops on repeated single-writer "
             "updates (paper Section VII).",
    )
    for variant, estate in (("with E-state", True), ("without", False)):
        system = build_scheme(
            "concord", cluster, coord, app=f"ab-{estate}",
            estate_writes=estate)
        key = f"counter-{estate}"

        def op(gen):
            return sim.run_until_complete(sim.spawn(gen), limit=sim.now + 60_000.0)

        op(system.write("node1", key, DataItem(0, 8)))  # acquire E
        messages_before = cluster.network.stats.messages
        start = sim.now
        repeats = 5
        for index in range(repeats):
            op(system.write("node1", key, DataItem(index + 1, 8)))
        result.data.append({
            "variant": variant,
            "write_ms": (sim.now - start) / repeats,
            "coherence_msgs": cluster.network.stats.messages - messages_before,
        })
    return result


def run_parallel_inv(scale: float = 1.0, seed: int = 203) -> ExperimentResult:
    """Write latency with invalidations parallel vs serialized."""
    result = ExperimentResult(
        experiment="Ablation: parallel invalidations",
        title="Write to a widely shared item: parallel vs serial invalidation",
        columns=["variant", "write_ms"],
        note="Parallel invalidations hide behind the storage round trip.",
    )
    for variant, parallel in (("parallel", True), ("serialized", False)):
        sim = Simulator(seed=seed)
        cluster = Cluster(sim, SimConfig(num_nodes=8))
        coord = CoordinationService(cluster.network, cluster.config)
        system = build_scheme(
            "concord", cluster, coord, app="abinv",
            parallel_invalidations=parallel)
        key = "shared"
        cluster.storage.preload({key: DataItem("v", 1024)})

        def op(gen):
            return sim.run_until_complete(sim.spawn(gen), limit=sim.now + 60_000.0)

        for node_id in cluster.node_ids:
            op(system.read(node_id, key))
        start = sim.now
        op(system.write("node0", key, DataItem("w", 1024)))
        result.data.append({"variant": variant, "write_ms": sim.now - start})
    return result


def run_faast_annotations(scale: float = 1.0, seed: int = 205) -> ExperimentResult:
    """Faa$T with and without developer read-only annotations."""
    result = ExperimentResult(
        experiment="Ablation: Faa$T read-only annotations",
        title="Faa$T mean latency with/without read-only annotations",
        columns=["variant", "mean_ms", "version_checks"],
        note="Only ~5% of objects are read-only, so annotations help little "
             "and Concord still wins (paper Related Work).",
    )
    for variant, annotated in (("plain", False), ("annotated", True)):
        config = MixedRunConfig(
            scheme="faast", num_nodes=8, cores_per_node=4,
            utilization=0.5, read_only_annotations=annotated,
            duration_ms=3000.0 * scale, warmup_ms=1200.0 * scale, seed=seed,
        )
        outcome = run_mixed_workload(config)
        result.data.append({
            "variant": variant,
            "mean_ms": outcome.mean_latency(),
            "version_checks": outcome.access.version_checks,
        })
    return result


def run_virtual_nodes(scale: float = 1.0, seed: int = 207) -> ExperimentResult:
    """Hash-ring virtual-node count: balance vs churn disruption."""
    result = ExperimentResult(
        experiment="Ablation: hash-ring virtual nodes",
        title="Key balance and re-home volume when 1 of 16 members leaves",
        columns=["virtual_nodes", "max/mean_keys", "rehomed_pct"],
        note="More virtual nodes -> better balance; re-home volume stays "
             "~1/16 either way (consistent hashing).",
    )
    members = [f"node{i}" for i in range(16)]
    keys = [f"key-{i}" for i in range(4000)]
    for virtual_nodes in (1, 8, 64, 256):
        ring = ConsistentHashRing(members, virtual_nodes=virtual_nodes)
        counts = {m: 0 for m in members}
        before = {}
        for key in keys:
            home = ring.home(key)
            counts[home] += 1
            before[key] = home
        ring.remove("node7")
        rehomed = sum(1 for key in keys if ring.home(key) != before[key])
        mean_keys = len(keys) / len(members)
        result.data.append({
            "virtual_nodes": virtual_nodes,
            "max/mean_keys": max(counts.values()) / mean_keys,
            "rehomed_pct": 100.0 * rehomed / len(keys),
        })
    return result
