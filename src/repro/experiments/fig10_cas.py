"""Figure 10: effect of coherence-aware invocation scheduling.

Concord No CAS already packs same-function invocations, but ignores which
*data* an invocation touches; hashing the invocation inputs (CAS) raises
local hit rates and cuts average request latency by ~11 % (paper VI-A).
"""

from __future__ import annotations

from repro.experiments.runner import MixedRunConfig, run_mixed_workload
from repro.experiments.tables import ExperimentResult


def run(scale: float = 1.0, seed: int = 115) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 10",
        title="Request latency: Concord No CAS vs Concord",
        columns=["app", "nocas_ms", "concord_ms", "reduction_pct"],
        note="Paper: CAS reduces average request latency by 11%.",
    )
    runs = {}
    for scheme in ("concord-nocas", "concord"):
        config = MixedRunConfig(
            scheme=scheme, num_nodes=8, cores_per_node=4,
            utilization=0.5,
            duration_ms=4000.0 * scale, warmup_ms=1500.0 * scale,
            seed=seed,
        )
        runs[scheme] = run_mixed_workload(config)
    reductions = []
    for app in runs["concord"].per_app:
        nocas = runs["concord-nocas"].per_app[app].mean_latency_ms
        cas = runs["concord"].per_app[app].mean_latency_ms
        reduction = 100.0 * (1.0 - cas / nocas)
        reductions.append(reduction)
        result.data.append({
            "app": app, "nocas_ms": nocas, "concord_ms": cas,
            "reduction_pct": reduction,
        })
    result.data.append({
        "app": "Average", "nocas_ms": "", "concord_ms": "",
        "reduction_pct": sum(reductions) / len(reductions),
    })
    return result
