"""Table I: average/maximum number of node sharers per data item.

Measured on a 16-node cluster while running HotelBook, TrainT, eShop and
SocNet under low, medium and high load — by sampling the sizes of the
sharer sets in Concord's data directories.
"""

from __future__ import annotations

from repro.experiments.runner import LOAD_LEVELS, MixedRunConfig, run_mixed_workload
from repro.experiments.tables import ExperimentResult

APPS = ("HotelBook", "TrainT", "eShop", "SocNet")


def run(scale: float = 1.0, seed: int = 105, num_nodes: int = 16) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Table I",
        title=f"Avg/Max data-item sharers on a {num_nodes}-node cluster",
        columns=["app", "low", "medium", "high"],
        note="Paper averages: 1.7/6.5 (low), 2.2/8.5 (medium), 3.0/10.8 (high).",
    )
    cells = {app: {} for app in APPS}
    averages = {}
    for load, utilization in LOAD_LEVELS.items():
        config = MixedRunConfig(
            scheme="concord", apps=APPS,
            num_nodes=num_nodes, cores_per_node=2,
            utilization=utilization,
            duration_ms=4000.0 * scale, warmup_ms=1500.0 * scale,
            seed=seed,
        )
        outcome = run_mixed_workload(config)
        load_avgs, load_maxes = [], []
        for app in APPS:
            samples = outcome.sharer_samples_per_app.get(app, [])
            if samples:
                avg = sum(s[0] for s in samples) / len(samples)
                peak = max(s[1] for s in samples)
            else:
                avg, peak = 0.0, 0
            cells[app][load] = f"{avg:.1f}/{peak}"
            load_avgs.append(avg)
            load_maxes.append(peak)
        averages[load] = (
            f"{sum(load_avgs) / len(load_avgs):.1f}/"
            f"{sum(load_maxes) / len(load_maxes):.1f}"
        )
    for app in APPS:
        result.data.append({"app": app, **cells[app]})
    result.data.append({"app": "Average", **averages})
    return result
