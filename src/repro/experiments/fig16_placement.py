"""Figure 16: communication-aware function placement.

Six producer-consumer pipeline applications run twice: once with
conventional independent placement and once with Concord's PCT-driven
placement, which co-locates paired functions so hand-offs hit the local
cache instance.  Paper: average latency drops 25 %, most for short apps.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.experiments.tables import ExperimentResult
from repro.faas import FaasPlatform
from repro.metrics import Histogram
from repro.placement import CommAwarePlacement, ProducerConsumerTable
from repro.schemes import build_scheme
from repro.sim import Simulator
from repro.workloads.pc_apps import PC_PROFILES, build_pc_app


def _measure(profile, use_cafp: bool, duration_ms: float, seed: int) -> float:
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, SimConfig(num_nodes=8, cores_per_node=4))
    coord = CoordinationService(cluster.network, cluster.config)
    concord = build_scheme("concord", cluster, coord, profile.name)
    pct = ProducerConsumerTable(min_observations=2).attach(concord)

    if use_cafp:
        platform = FaasPlatform(cluster, placement=CommAwarePlacement(pct))
    else:
        platform = FaasPlatform(cluster)
    app = platform.deploy(build_pc_app(profile), concord, prewarm=False)

    counter = {"next": 0}

    def inputs_factory(_index):
        counter["next"] += 1
        return {"request": counter["next"]}

    rps = 8.0  # light load: single-instance pipelines must not CPU-saturate
    # Learning phase under load: the PCT observes the hand-off traffic and
    # the default placement scatters the pipeline's stages.
    sim.spawn(platform.open_loop(
        profile.name, rps, duration_ms * 0.5, inputs_factory), name="learn")
    sim.run(until=sim.now + duration_ms * 0.5 + 500.0)
    # Re-place: evict the idle containers; the next cold starts consult
    # the (now populated) PCT when CAFP is enabled.
    platform.collect_idle_containers(grace_ms=0.0)
    app.latency = Histogram()
    app.cold_starts = 0
    sim.spawn(platform.open_loop(
        profile.name, rps, duration_ms, inputs_factory), name="measure")
    sim.run(until=sim.now + duration_ms + 1500.0)
    # Exclude the cold-start transient at the head of the phase.
    return app.latency.trimmed_mean(0.1)


def run(scale: float = 1.0, seed: int = 127) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 16",
        title="Latency with communication-aware function placement",
        columns=["app", "concord_ms", "concord+cafp_ms", "reduction_pct"],
        note="Paper: co-locating paired functions cuts latency 25% on average.",
    )
    duration = 3000.0 * scale
    reductions = []
    for name, profile in PC_PROFILES.items():
        base = _measure(profile, use_cafp=False, duration_ms=duration, seed=seed)
        cafp = _measure(profile, use_cafp=True, duration_ms=duration, seed=seed)
        reduction = 100.0 * (1 - cafp / base)
        reductions.append(reduction)
        result.data.append({
            "app": name, "concord_ms": base, "concord+cafp_ms": cafp,
            "reduction_pct": reduction,
        })
    result.data.append({
        "app": "Average", "concord_ms": "", "concord+cafp_ms": "",
        "reduction_pct": sum(reductions) / len(reductions),
    })
    return result
