"""Table III: distribution of read operations in Concord.

Local hit / remote hit / remote miss fractions with and without
coherence-aware invocation scheduling.  Paper averages: 75/18/7 without
CAS, 83/10/7 with CAS.
"""

from __future__ import annotations

from repro.experiments.runner import MixedRunConfig, run_mixed_workload
from repro.experiments.tables import ExperimentResult


def run(scale: float = 1.0, seed: int = 111) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Table III",
        title="Read mix: Concord without CAS (C-NoCAS) vs Concord (C)",
        columns=["app", "local% (NoCAS-C)", "remote% (NoCAS-C)", "miss% (NoCAS-C)"],
        note="Paper averages: 75-83 local, 18-10 remote hit, 7-7 miss.",
    )
    runs = {}
    for scheme in ("concord-nocas", "concord"):
        config = MixedRunConfig(
            scheme=scheme, num_nodes=8, cores_per_node=4,
            utilization=0.5,
            duration_ms=4000.0 * scale, warmup_ms=1500.0 * scale,
            seed=seed,
        )
        runs[scheme] = run_mixed_workload(config)

    def mix(scheme, app):
        return runs[scheme].per_app_access[app].read_mix()

    totals = {"nocas": [0.0, 0.0, 0.0], "cas": [0.0, 0.0, 0.0]}
    apps = list(runs["concord"].per_app)
    for app in apps:
        nocas, cas = mix("concord-nocas", app), mix("concord", app)
        for index, field in enumerate(("local_hit", "remote_hit", "remote_miss")):
            totals["nocas"][index] += nocas[field]
            totals["cas"][index] += cas[field]
        result.data.append({
            "app": app,
            "local% (NoCAS-C)": f"{nocas['local_hit']*100:.0f} - {cas['local_hit']*100:.0f}",
            "remote% (NoCAS-C)": f"{nocas['remote_hit']*100:.0f} - {cas['remote_hit']*100:.0f}",
            "miss% (NoCAS-C)": f"{nocas['remote_miss']*100:.0f} - {cas['remote_miss']*100:.0f}",
        })
    count = len(apps)
    result.data.append({
        "app": "Average",
        "local% (NoCAS-C)": f"{totals['nocas'][0]/count*100:.0f} - {totals['cas'][0]/count*100:.0f}",
        "remote% (NoCAS-C)": f"{totals['nocas'][1]/count*100:.0f} - {totals['cas'][1]/count*100:.0f}",
        "miss% (NoCAS-C)": f"{totals['nocas'][2]/count*100:.0f} - {totals['cas'][2]/count*100:.0f}",
    })
    return result
