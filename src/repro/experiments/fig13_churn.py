"""Figure 13: throughput under coherence-domain churn (SocNet).

Cache instances are repeatedly removed from and re-added to a 16-node
coherence domain while load runs; the two-phase domain-change protocol is
non-blocking except for re-homed keys, so throughput stays high until
very aggressive churn (paper: up to ~48 removals+additions per minute).

The runs can additionally export telemetry timelines
(``timelines=``/``metrics=``), and a synthetic *write burst* can be
injected mid-run (:class:`WriteBurst`): a few hot keys are read from
every node (maximizing the sharer sets) and then written continuously,
which produces the invalidation storm the ``repro-metrics`` anomaly
report is designed to flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.experiments.tables import ExperimentResult
from repro.faas import CasScheduler, FaasPlatform
from repro.obs import FlightRecorder
from repro.schemes import build_scheme
from repro.sim import Simulator
from repro.storage import DataItem
from repro.telemetry import MetricsRegistry, Sampler
from repro.telemetry import export_jsonl as export_metrics_jsonl
from repro.workloads import ALL_PROFILES, build_app, entity_inputs_factory
from repro.workloads.profiles import preload_storage

CHURN_RATES = (0, 6, 12, 24, 48, 96)  # removals (and re-additions) / minute


@dataclass(frozen=True)
class WriteBurst:
    """A synthetic write storm injected into the run.

    During ``[start_ms, start_ms + duration_ms)`` each writer process
    repeatedly (a) reads one of ``keys`` hot keys from every live cache
    instance — growing its sharer set to the whole domain — and then
    (b) writes it, forcing an invalidation fan-out to all sharers.
    """

    start_ms: float
    duration_ms: float
    keys: int = 8
    writers: int = 2

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms

    def key_names(self) -> list:
        return [f"burst:k{i}" for i in range(self.keys)]


def _burst_writer(sim, concord, app, burst: WriteBurst, writer_index: int):
    """One burst writer process (spawned as a daemon)."""
    keys = burst.key_names()
    yield sim.timeout(burst.start_ms)
    turn = writer_index
    sequence = 0
    while sim.now < burst.end_ms:
        key = keys[turn % len(keys)]
        # Churn-safe: only nodes whose cache instance currently exists.
        nodes = [n for n in app.node_ids if n in concord.agents]
        if len(nodes) < 2:
            yield sim.timeout(10.0)
            continue
        # Fan the key out to every instance first, so the following write
        # must invalidate a full-domain sharer set.
        readers = [
            sim.spawn(concord.read(node_id, key),
                      name=f"burst-read:{node_id}", daemon=True)
            for node_id in nodes
        ]
        yield sim.all_of(readers)
        writer_node = nodes[turn % len(nodes)]
        yield from concord.write(
            writer_node, key,
            DataItem(("burst", writer_index, sequence), 256))
        sequence += 1
        turn += burst.writers


def _throughput_at(
    churn_per_min: int, duration_ms: float, seed: int,
    num_nodes: int = 16,
    metrics: object = None,
    metrics_interval_ms: float = 100.0,
    write_burst: Optional[WriteBurst] = None,
    obs: object = None,
):
    """One churn run; returns ``(throughput_rps, registry_or_None)``.

    ``metrics`` works like :class:`MixedRunConfig.metrics`: truthy
    attaches a sampled registry, a path string also exports the JSONL
    timeline there.  ``obs`` attaches a flight recorder the same way
    (truthy for an in-memory ring, an instance as-is).
    """
    registry = None
    if metrics:
        registry = (metrics if isinstance(metrics, MetricsRegistry)
                    else MetricsRegistry())
    # isinstance first: an empty FlightRecorder is falsy (len() == 0).
    recorder = None
    if isinstance(obs, FlightRecorder):
        recorder = obs
    elif obs:
        recorder = FlightRecorder()
    sim = Simulator(seed=seed, metrics=registry, obs=recorder)
    cluster = Cluster(sim, SimConfig(num_nodes=num_nodes, cores_per_node=2))
    coord = CoordinationService(cluster.network, cluster.config)
    profile = ALL_PROFILES["SocNet"]
    concord = build_scheme("concord", cluster, coord, "SocNet")
    preload_storage(cluster.storage, profile)
    platform = FaasPlatform(cluster, scheduler=CasScheduler())
    app = platform.deploy(build_app(profile), concord)
    factory = entity_inputs_factory(profile, sim)
    sampler = Sampler(sim, interval_ms=metrics_interval_ms)
    sampler.start()

    rps = 40.0
    sim.spawn(platform.open_loop("SocNet", rps, duration_ms, factory),
              name="load")

    if churn_per_min > 0:
        interval_ms = 60_000.0 / churn_per_min

        def churner(sim):
            rng = sim.rng.stream("churn")
            while sim.now < duration_ms:
                yield sim.timeout(interval_ms)
                candidates = [n for n in app.node_ids if n in concord.agents]
                if len(candidates) < 2:
                    continue
                victim = rng.choice(candidates)
                app.node_ids.remove(victim)  # stop routing there
                yield from concord.remove_instance(victim)
                yield sim.timeout(50.0)
                yield from concord.create_instance(victim)
                app.node_ids.append(victim)

        sim.spawn(churner(sim), name="churner", daemon=True)

    if write_burst is not None:
        cluster.storage.preload({
            key: DataItem(f"{key}:v0", 256)
            for key in write_burst.key_names()
        })
        for writer_index in range(write_burst.writers):
            sim.spawn(
                _burst_writer(sim, concord, app, write_burst, writer_index),
                name=f"burst-writer:{writer_index}", daemon=True,
            )

    sim.run(until=duration_ms + 3000.0)
    sampler.stop()
    if registry is not None and isinstance(metrics, str):
        export_metrics_jsonl(registry, metrics)
    return app.requests_completed / (duration_ms / 1000.0), registry


def run_write_burst_timeline(
    path: Optional[str] = None,
    num_nodes: int = 4,
    duration_ms: float = 6000.0,
    seed: int = 121,
    churn_per_min: int = 6,
    burst: Optional[WriteBurst] = None,
    metrics_interval_ms: float = 100.0,
):
    """Run fig13's setup with an injected write burst; telemetry on.

    Returns ``(registry, burst)`` — feed ``registry.store.all_series()``
    to :func:`repro.telemetry.detect_anomalies` (or point
    ``repro-metrics --anomalies`` at the exported ``path``) and the storm
    detector reports the burst's simulated-time window.
    """
    if burst is None:
        burst = WriteBurst(start_ms=duration_ms * 0.4,
                           duration_ms=duration_ms * 0.25)
    _throughput, registry = _throughput_at(
        churn_per_min, duration_ms, seed, num_nodes=num_nodes,
        metrics=path if path else True,
        metrics_interval_ms=metrics_interval_ms,
        write_burst=burst,
    )
    return registry, burst


def run(scale: float = 1.0, seed: int = 121,
        timelines: Optional[str] = None) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 13",
        title="SocNet throughput vs cache-instance churn rate",
        columns=["removals_per_min", "throughput_rps", "normalized"],
        note="Paper: throughput holds until ~48 removals+additions/minute.",
    )
    if timelines is not None:
        Path(timelines).mkdir(parents=True, exist_ok=True)
    duration = 6000.0 * scale
    baseline = None
    for rate in CHURN_RATES:
        metrics = None
        if timelines is not None:
            metrics = str(Path(timelines) / f"fig13_churn{rate}.jsonl")
        throughput, _registry = _throughput_at(
            rate, duration, seed, metrics=metrics)
        if baseline is None:
            baseline = throughput
        result.data.append({
            "removals_per_min": rate,
            "throughput_rps": throughput,
            "normalized": throughput / baseline if baseline else float("nan"),
        })
    return result
