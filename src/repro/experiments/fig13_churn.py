"""Figure 13: throughput under coherence-domain churn (SocNet).

Cache instances are repeatedly removed from and re-added to a 16-node
coherence domain while load runs; the two-phase domain-change protocol is
non-blocking except for re-homed keys, so throughput stays high until
very aggressive churn (paper: up to ~48 removals+additions per minute).
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.experiments.tables import ExperimentResult
from repro.faas import CasScheduler, FaasPlatform
from repro.sim import Simulator
from repro.workloads import ALL_PROFILES, build_app, entity_inputs_factory
from repro.workloads.profiles import preload_storage

CHURN_RATES = (0, 6, 12, 24, 48, 96)  # removals (and re-additions) / minute


def _throughput_at(churn_per_min: int, duration_ms: float, seed: int,
                   num_nodes: int = 16) -> float:
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, SimConfig(num_nodes=num_nodes, cores_per_node=2))
    coord = CoordinationService(cluster.network, cluster.config)
    profile = ALL_PROFILES["SocNet"]
    concord = ConcordSystem(cluster, app="SocNet", coord=coord)
    preload_storage(cluster.storage, profile)
    platform = FaasPlatform(cluster, scheduler=CasScheduler())
    app = platform.deploy(build_app(profile), concord)
    factory = entity_inputs_factory(profile, sim)

    rps = 40.0
    sim.spawn(platform.open_loop("SocNet", rps, duration_ms, factory),
              name="load")

    if churn_per_min > 0:
        interval_ms = 60_000.0 / churn_per_min

        def churner(sim):
            rng = sim.rng.stream("churn")
            while sim.now < duration_ms:
                yield sim.timeout(interval_ms)
                candidates = [n for n in app.node_ids if n in concord.agents]
                if len(candidates) < 2:
                    continue
                victim = rng.choice(candidates)
                app.node_ids.remove(victim)  # stop routing there
                yield from concord.remove_instance(victim)
                yield sim.timeout(50.0)
                yield from concord.create_instance(victim)
                app.node_ids.append(victim)

        sim.spawn(churner(sim), name="churner", daemon=True)

    sim.run(until=duration_ms + 3000.0)
    return app.requests_completed / (duration_ms / 1000.0)


def run(scale: float = 1.0, seed: int = 121) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 13",
        title="SocNet throughput vs cache-instance churn rate",
        columns=["removals_per_min", "throughput_rps", "normalized"],
        note="Paper: throughput holds until ~48 removals+additions/minute.",
    )
    duration = 6000.0 * scale
    baseline = None
    for rate in CHURN_RATES:
        throughput = _throughput_at(rate, duration, seed)
        if baseline is None:
            baseline = throughput
        result.data.append({
            "removals_per_min": rate,
            "throughput_rps": throughput,
            "normalized": throughput / baseline if baseline else float("nan"),
        })
    return result
