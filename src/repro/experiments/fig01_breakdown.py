"""Figure 1: response-time breakdown into processing and storage access.

On a conventional (cache-less) platform, storage accounts for 35-93 % of
end-to-end response time with an average of 63.1 % (paper Section II-A).

The breakdown is measured twice: from the platform's per-invocation time
counters, and independently from the causal trace (the ``op`` and
``compute`` spans of each request's span tree).  The two must agree —
the run fails if they diverge — so the counters and the tracing layer
cross-validate each other.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.experiments.tables import ExperimentResult
from repro.faas import FaasPlatform
from repro.schemes import build_scheme
from repro.sim import Simulator
from repro.trace import Tracer
from repro.trace.summary import per_app_requests
from repro.workloads import ALL_PROFILES, build_app, entity_inputs_factory
from repro.workloads.profiles import preload_storage


def run(scale: float = 1.0, seed: int = 101) -> ExperimentResult:
    """Measure each app's storage share on an unloaded cache-less cluster."""
    requests = max(4, int(20 * scale))
    tracer = Tracer()
    sim = Simulator(seed=seed, tracer=tracer)
    cluster = Cluster(sim, SimConfig(num_nodes=4, cores_per_node=8))
    platform = FaasPlatform(cluster)

    result = ExperimentResult(
        experiment="Figure 1",
        title="Response-time breakdown (no caching)",
        columns=["app", "response_ms", "storage_ms", "compute_ms",
                 "storage_pct", "trace_storage_pct"],
        note="Paper: storage is 35.1-93.0% of response time, average 63.1%. "
             "trace_storage_pct is derived independently from span trees.",
    )
    fractions = []
    for name, profile in ALL_PROFILES.items():
        preload_storage(cluster.storage, profile)
        app = platform.deploy(build_app(profile),
                              build_scheme("nocache", cluster))
        factory = entity_inputs_factory(profile, sim)
        for index in range(requests):
            sim.run_until_complete(
                sim.spawn(platform.request(name, factory(index))),
                limit=sim.now + 600_000.0,
            )
        fraction = app.storage_fraction
        fractions.append(fraction)
        result.data.append({
            "app": name,
            "response_ms": app.latency.mean,
            "storage_ms": app.storage_ms_total / app.requests_completed,
            "compute_ms": app.compute_ms_total / app.requests_completed,
            "storage_pct": 100.0 * fraction,
        })
    # Cross-check: re-derive the breakdown from the causal trace.  The
    # ``op`` spans bracket exactly the interval the invocation context
    # charges to storage_ms, so counters and spans must agree.
    traced = per_app_requests(tracer.to_dicts())
    trace_pcts = []
    for row in result.data:
        summary = traced[row["app"]]
        row["trace_storage_pct"] = summary["storage_pct"]
        trace_pcts.append(summary["storage_pct"])
        if abs(row["trace_storage_pct"] - row["storage_pct"]) > 0.1:
            raise RuntimeError(
                f"trace/counter breakdown mismatch for {row['app']}: "
                f"{row['trace_storage_pct']:.3f}% (spans) vs "
                f"{row['storage_pct']:.3f}% (counters)")
    result.data.append({
        "app": "Average",
        "response_ms": "",
        "storage_ms": "",
        "compute_ms": "",
        "storage_pct": 100.0 * sum(fractions) / len(fractions),
        "trace_storage_pct": sum(trace_pcts) / len(trace_pcts),
    })
    return result
