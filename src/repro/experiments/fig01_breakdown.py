"""Figure 1: response-time breakdown into processing and storage access.

On a conventional (cache-less) platform, storage accounts for 35-93 % of
end-to-end response time with an average of 63.1 % (paper Section II-A).
"""

from __future__ import annotations

from repro.caching import DirectStorage
from repro.cluster import Cluster
from repro.config import SimConfig
from repro.experiments.tables import ExperimentResult
from repro.faas import FaasPlatform
from repro.sim import Simulator
from repro.workloads import ALL_PROFILES, build_app, entity_inputs_factory
from repro.workloads.profiles import preload_storage


def run(scale: float = 1.0, seed: int = 101) -> ExperimentResult:
    """Measure each app's storage share on an unloaded cache-less cluster."""
    requests = max(4, int(20 * scale))
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, SimConfig(num_nodes=4, cores_per_node=8))
    platform = FaasPlatform(cluster)

    result = ExperimentResult(
        experiment="Figure 1",
        title="Response-time breakdown (no caching)",
        columns=["app", "response_ms", "storage_ms", "compute_ms", "storage_pct"],
        note="Paper: storage is 35.1-93.0% of response time, average 63.1%.",
    )
    fractions = []
    for name, profile in ALL_PROFILES.items():
        preload_storage(cluster.storage, profile)
        app = platform.deploy(build_app(profile), DirectStorage(cluster))
        factory = entity_inputs_factory(profile, sim)
        for index in range(requests):
            sim.run_until_complete(
                sim.spawn(platform.request(name, factory(index))),
                limit=sim.now + 600_000.0,
            )
        fraction = app.storage_fraction
        fractions.append(fraction)
        result.data.append({
            "app": name,
            "response_ms": app.latency.mean,
            "storage_ms": app.storage_ms_total / app.requests_completed,
            "compute_ms": app.compute_ms_total / app.requests_completed,
            "storage_pct": 100.0 * fraction,
        })
    result.data.append({
        "app": "Average",
        "response_ms": "",
        "storage_ms": "",
        "compute_ms": "",
        "storage_pct": 100.0 * sum(fractions) / len(fractions),
    })
    return result
