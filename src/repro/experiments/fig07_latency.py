"""Figure 7: request latency of OFC, Faa$T and Concord under three loads.

The paper reports latencies normalized to OFC, with Concord's absolute
latencies annotated; on average Concord reduces latency by 2.1x/2.4x/2.6x
over OFC (low/medium/high) and slightly more over Faa$T.
"""

from __future__ import annotations

from repro.experiments.runner import LOAD_LEVELS, MixedRunConfig, run_mixed_workload
from repro.experiments.tables import ExperimentResult

SCHEMES = ("ofc", "faast", "concord")


def run(scale: float = 1.0, seed: int = 107,
        loads: tuple = tuple(LOAD_LEVELS)) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 7",
        title="Application request latency: OFC vs Faa$T vs Concord",
        columns=["load", "app", "ofc_ms", "faast_ms", "concord_ms",
                 "ofc/concord", "faast/concord"],
        note=("Normalized shape to compare with the paper: OFC ~ Faa$T, "
              "Concord fastest, gap widening with load."),
    )
    for load in loads:
        runs = {}
        for scheme in SCHEMES:
            config = MixedRunConfig(
                scheme=scheme,
                num_nodes=8, cores_per_node=4,
                utilization=LOAD_LEVELS[load],
                duration_ms=4000.0 * scale, warmup_ms=1500.0 * scale,
                seed=seed,
            )
            runs[scheme] = run_mixed_workload(config)
        speedup_o, speedup_f = [], []
        for app in runs["concord"].per_app:
            ofc = runs["ofc"].per_app[app].mean_latency_ms
            faast = runs["faast"].per_app[app].mean_latency_ms
            concord = runs["concord"].per_app[app].mean_latency_ms
            speedup_o.append(ofc / concord)
            speedup_f.append(faast / concord)
            result.data.append({
                "load": load, "app": app,
                "ofc_ms": ofc, "faast_ms": faast, "concord_ms": concord,
                "ofc/concord": ofc / concord,
                "faast/concord": faast / concord,
            })
        result.data.append({
            "load": load, "app": "Average",
            "ofc_ms": "", "faast_ms": "", "concord_ms": "",
            "ofc/concord": sum(speedup_o) / len(speedup_o),
            "faast/concord": sum(speedup_f) / len(speedup_f),
        })
    return result
