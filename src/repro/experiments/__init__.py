"""Experiment harness: one module per paper table/figure.

Every module exposes a ``run(scale=1.0)`` entry point returning a result
object with a ``rows()`` method (list of dicts) and a ``render()`` method
(ASCII table matching the paper's presentation).  The benchmarks in
``benchmarks/`` call these entry points; ``scale`` shrinks durations and
request counts for quick runs.
"""

from repro.experiments.runner import (
    LOAD_LEVELS,
    MixedRunConfig,
    MixedRunResult,
    run_mixed_workload,
    unloaded_latency,
)
from repro.experiments.tables import render_table

__all__ = [
    "LOAD_LEVELS",
    "MixedRunConfig",
    "MixedRunResult",
    "render_table",
    "run_mixed_workload",
    "unloaded_latency",
]
