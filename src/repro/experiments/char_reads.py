"""Section VI-A characterization: Concord read-operation latencies.

Paper: a local hit takes 1.6 ms, a remote hit 3.1 ms and a remote miss
32 ms on average.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.experiments.tables import ExperimentResult
from repro.schemes import build_scheme
from repro.sim import Simulator
from repro.storage import DataItem


def run(scale: float = 1.0, seed: int = 131) -> ExperimentResult:
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, SimConfig(num_nodes=4))
    coord = CoordinationService(cluster.network, cluster.config)
    concord = build_scheme("concord", cluster, coord, "char")

    def op(gen):
        return sim.run_until_complete(sim.spawn(gen), limit=sim.now + 60_000.0)

    def timed(gen):
        start = sim.now
        op(gen)
        return sim.now - start

    key = "char-item"
    cluster.storage.preload({key: DataItem("v", size_bytes=4 * 1024)})
    home = concord.ring_template.home(key)
    others = [n for n in cluster.node_ids if n != home]

    # Remote miss: first touch from a non-home node (no directory entry).
    remote_miss = timed(concord.read(others[0], key))
    # Warm the home's own cache (downgrades the first reader to Shared)
    # so the next remote read is the common Shared-state serve.
    op(concord.read(home, key))
    remote_hit = timed(concord.read(others[1], key))
    # Local hit: read again where it is now cached.
    local_hit = timed(concord.read(others[1], key))

    result = ExperimentResult(
        experiment="Section VI-A",
        title="Concord read-operation latencies",
        columns=["operation", "measured_ms", "paper_ms"],
    )
    result.data.append({"operation": "local hit", "measured_ms": local_hit,
                        "paper_ms": 1.6})
    result.data.append({"operation": "remote hit", "measured_ms": remote_hit,
                        "paper_ms": 3.1})
    result.data.append({"operation": "remote miss", "measured_ms": remote_miss,
                        "paper_ms": 32.0})
    return result
