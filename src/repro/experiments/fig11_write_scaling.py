"""Figure 11: write latency vs number of sharing nodes (1-30).

All nodes cache the item, one writes: the home's invalidations travel in
parallel with the storage update, so the write grows from ~30 ms to only
~32.4 ms at 30 nodes.  A Faa$T write never invalidates (flat ~30 ms), but
a Faa$T *local read hit* costs a version round trip (3.8 ms vs Concord's
1.6 ms) — the trade the paper calls out.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.experiments.tables import ExperimentResult
from repro.schemes import build_scheme
from repro.sim import Simulator
from repro.storage import DataItem

NODE_COUNTS = (1, 2, 4, 8, 16, 24, 30)


def _measure(system_name: str, num_nodes: int, seed: int) -> tuple:
    """Returns (write_ms, read_hit_ms) for one system at one scale."""
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, SimConfig(num_nodes=num_nodes))
    key = "shared-item"
    cluster.storage.preload({key: DataItem("v0", size_bytes=8 * 1024)})

    if system_name == "concord":
        coord = CoordinationService(cluster.network, cluster.config)
        system = build_scheme("concord", cluster, coord, "bench")
    else:
        system = build_scheme("faast", cluster, None, "bench")

    def op(gen):
        return sim.run_until_complete(sim.spawn(gen), limit=sim.now + 600_000.0)

    # Load the item into every node's cache.
    for node_id in cluster.node_ids:
        op(system.read(node_id, key))

    # Non-home reader/writer exercise the interesting paths.
    home = system.ring.home(key) if system_name == "faast" else (
        system.ring_template.home(key))
    others = [n for n in cluster.node_ids if n != home]
    reader = others[0] if others else home
    writer = others[-1] if others else home

    start = sim.now
    op(system.read(reader, key))
    read_hit_ms = sim.now - start

    start = sim.now
    op(system.write(writer, key, DataItem("v1", size_bytes=8 * 1024)))
    write_ms = sim.now - start
    return write_ms, read_hit_ms


def run(scale: float = 1.0, seed: int = 117) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 11",
        title="Write latency vs sharers; local read hit latency",
        columns=["nodes", "concord_write_ms", "faast_write_ms",
                 "concord_read_hit_ms", "faast_read_hit_ms"],
        note=("Paper: Concord writes 30->32.4ms over 1..30 nodes; Faa$T flat; "
              "read hits 1.6ms (Concord) vs 3.8ms (Faa$T)."),
    )
    counts = NODE_COUNTS if scale >= 1.0 else NODE_COUNTS[:4]
    for nodes in counts:
        concord_write, concord_read = _measure("concord", nodes, seed)
        faast_write, faast_read = _measure("faast", nodes, seed)
        result.data.append({
            "nodes": nodes,
            "concord_write_ms": concord_write,
            "faast_write_ms": faast_write,
            "concord_read_hit_ms": concord_read,
            "faast_read_hit_ms": faast_read,
        })
    return result
