"""Figure 14: Concord's speedup over OFC as cache capacity varies.

Tiny caches thrash (little benefit); the speedup grows with capacity and
saturates once the application working set fits — around 6-7 MB in the
paper, at a speedup of ~2.5x.
"""

from __future__ import annotations

from repro.config import KB, MB
from repro.experiments.runner import MixedRunConfig, run_mixed_workload
from repro.experiments.tables import ExperimentResult

CACHE_SIZES = (
    64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB, 64 * MB,
)


def run(scale: float = 1.0, seed: int = 123) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 14",
        title="Speedup of Concord over OFC vs cache size (medium load)",
        columns=["cache_size_kb", "concord_ms", "ofc_ms", "speedup"],
        note="Paper: little benefit at tens of KB, saturates ~6-7MB at 2.5x.",
    )
    for size in CACHE_SIZES:
        runs = {}
        for scheme in ("concord", "ofc"):
            config = MixedRunConfig(
                scheme=scheme, num_nodes=8, cores_per_node=4,
                utilization=0.5, cache_capacity=size,
                # OFC's single per-node cache is shared by all 7 apps;
                # give it the same per-app budget for a fair sweep.
                ofc_shared_capacity=size * 7,
                duration_ms=3000.0 * scale, warmup_ms=1500.0 * scale,
                seed=seed,
            )
            runs[scheme] = run_mixed_workload(config)
        concord = runs["concord"].mean_latency()
        ofc = runs["ofc"].mean_latency()
        result.data.append({
            "cache_size_kb": size // KB,
            "concord_ms": concord,
            "ofc_ms": ofc,
            "speedup": ofc / concord,
        })
    return result
