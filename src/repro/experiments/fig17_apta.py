"""Figure 17: Concord vs the software version of Apta.

Four environments at medium load: updates propagated to global storage
(Apta-Az / Concord-Az) or only to the memory-node tier (Apta-Mem /
Concord-Mem).  Paper: Concord reduces latency 41.2 % vs Apta-Az and
47.4 % vs Apta-Mem — lazy invalidations shrink Apta's schedulable node
set and its scheduler pays a memory-node query on every invocation.
"""

from __future__ import annotations

from repro.experiments.runner import MixedRunConfig, run_mixed_workload
from repro.experiments.tables import ExperimentResult

ENVIRONMENTS = ("apta-az", "concord", "apta-mem", "concord-mem")
LABELS = {
    "apta-az": "Apta-Az", "concord": "Concord-Az",
    "apta-mem": "Apta-Mem", "concord-mem": "Concord-Mem",
}


def run(scale: float = 1.0, seed: int = 129) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 17",
        title="Application latency: Apta vs Concord (Az and Mem tiers)",
        columns=["environment", "mean_ms", "normalized_to_apta_az"],
        note="Paper: Concord-Az/-Mem cut latency 41%/47% vs Apta-Az/-Mem.",
    )
    means = {}
    for scheme in ENVIRONMENTS:
        config = MixedRunConfig(
            scheme=scheme, num_nodes=8, cores_per_node=4,
            utilization=0.5,
            duration_ms=3000.0 * scale, warmup_ms=1500.0 * scale,
            seed=seed,
        )
        means[scheme] = run_mixed_workload(config).mean_latency()
    baseline = means["apta-az"]
    for scheme in ENVIRONMENTS:
        result.data.append({
            "environment": LABELS[scheme],
            "mean_ms": means[scheme],
            "normalized_to_apta_az": means[scheme] / baseline,
        })
    return result
