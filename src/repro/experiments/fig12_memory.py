"""Figure 12: memory consumed by one cache instance.

The caches live in the applications' allocated-but-unused container
memory; the paper measures 6.2 MB average / 12.6 MB maximum per cache
instance, roughly a tenth of the 56.8 MB of unused memory available.
"""

from __future__ import annotations

from repro.config import MB
from repro.experiments.runner import MixedRunConfig, run_mixed_workload
from repro.experiments.tables import ExperimentResult


def run(scale: float = 1.0, seed: int = 119) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 12",
        title="Cache-instance memory consumption (Concord)",
        columns=["app", "avg_instance_mb", "max_instance_mb"],
        note="Paper: 6.2MB average, 12.6MB maximum per instance.",
    )
    config = MixedRunConfig(
        scheme="concord", num_nodes=8, cores_per_node=4,
        utilization=0.5,
        cache_capacity=None,  # real repurposed-memory budget
        duration_ms=4000.0 * scale, warmup_ms=1500.0 * scale,
        seed=seed,
    )
    outcome = run_mixed_workload(config)
    per_app: dict = {}
    for (app, _node), peak in outcome.cache_peaks.items():
        per_app.setdefault(app, []).append(peak)
    all_avgs, all_maxes = [], []
    for app, peaks in sorted(per_app.items()):
        avg = sum(peaks) / len(peaks) / MB
        peak = max(peaks) / MB
        all_avgs.append(avg)
        all_maxes.append(peak)
        result.data.append({
            "app": app, "avg_instance_mb": avg, "max_instance_mb": peak,
        })
    if all_avgs:
        result.data.append({
            "app": "Average",
            "avg_instance_mb": sum(all_avgs) / len(all_avgs),
            "max_instance_mb": sum(all_maxes) / len(all_maxes),
        })
    return result
