"""Section III-H: exhaustive model checking of the coherence protocol."""

from __future__ import annotations

from repro.experiments.tables import ExperimentResult
from repro.verify import ModelChecker, ModelConfig

CONFIGS = (
    ("fault-free, 2 nodes", ModelConfig(
        nodes=("n0", "n1"), max_writes=3,
        allow_failures=False, allow_domain_changes=False)),
    ("fault-free, 3 nodes", ModelConfig(
        nodes=("n0", "n1", "n2"), max_writes=3,
        allow_failures=False, allow_domain_changes=False)),
    ("with node failure", ModelConfig(
        nodes=("n0", "n1", "n2"), max_writes=2, max_fails=1,
        allow_domain_changes=False)),
    ("with domain changes", ModelConfig(
        nodes=("n0", "n1", "n2"), max_writes=2,
        allow_failures=False, max_domain_changes=2)),
    ("failures + domain changes", ModelConfig(
        nodes=("n0", "n1", "n2"), max_writes=2, max_fails=1,
        max_domain_changes=1)),
)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Section III-H",
        title="Protocol model checking (explicit-state, TLC stand-in)",
        columns=["configuration", "states", "transitions",
                 "violations", "deadlocks"],
        note="All invariants hold: ESI single-writer, write-through value "
             "coherence, directory completeness, no deadlock.",
    )
    for label, config in CONFIGS:
        report = ModelChecker(config).check()
        result.data.append({
            "configuration": label,
            "states": report.states_explored,
            "transitions": report.transitions,
            "violations": len(report.violations),
            "deadlocks": len(report.deadlocks),
        })
    return result
