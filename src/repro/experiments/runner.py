"""The shared mixed-workload runner behind most experiments.

Mirrors the paper's setup: all seven applications run concurrently on one
cluster, the offered load is split evenly among them, and low/medium/high
load levels drive cluster CPU utilization to roughly 25 %, 50 % and 70 %
(Section V).  The cluster is scaled down from the paper's 16x20 cores to
keep simulation time manageable; ``num_nodes``/``cores_per_node`` are
configurable, and every reported metric is shape-preserving (ratios, hit
mixes, invalidation counts) rather than absolute.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cluster import Cluster
from repro.config import MB, LatencyModel, SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.faas import FaasPlatform
from repro.faults import FaultInjector
from repro.metrics import AccessStats, Histogram
from repro.obs import FlightRecorder
from repro.schemes import build_scheme_map, make_scheduler, scheme_spec
from repro.sim import Simulator
from repro.telemetry import MetricsRegistry, Sampler
from repro.telemetry import export_jsonl as export_metrics_jsonl
from repro.trace import Tracer, export_chrome
from repro.workloads import ALL_PROFILES, build_app, entity_inputs_factory
from repro.workloads.profiles import preload_storage

#: Load levels as target cluster CPU utilization (paper Section V).
LOAD_LEVELS = {"low": 0.25, "medium": 0.50, "high": 0.70}


@dataclass
class MixedRunConfig:
    """One mixed-workload measurement run."""

    scheme: str = "concord"
    num_nodes: int = 4
    cores_per_node: int = 8
    apps: tuple = tuple(ALL_PROFILES)
    #: Target cluster CPU utilization (overrides total_rps if set).
    utilization: Optional[float] = 0.50
    #: Explicit total request rate (requests/s across all apps).
    total_rps: Optional[float] = None
    duration_ms: float = 6000.0
    warmup_ms: float = 2000.0
    drain_ms: float = 2000.0
    seed: int = 0xC0FFEE
    #: Fixed per-instance cache capacity (None = repurposed memory).
    cache_capacity: Optional[int] = 64 * MB
    #: Sampling period for sharer/memory observations.
    sample_every_ms: float = 250.0
    read_only_annotations: bool = False
    #: Override for OFC's per-node shared cache budget (by default OFC
    #: shares one 64 MB per-node cache across all apps, as in its paper;
    #: Figure 14 sets this to a per-app-equivalent budget for a fair
    #: capacity sweep).
    ofc_shared_capacity: Optional[int] = None
    #: Cache-agent request service time.  The cluster here is scaled down
    #: ~10x from the paper's 16x20-core / 2000-RPS deployment, so the raw
    #: 0.3 ms agent cost would make per-node RPC utilization — the
    #: contention-point effect of Section III — vanish.  1.2 ms restores
    #: the paper's RPC-utilization operating points (roughly 25/50/70 %
    #: busy at the hot agents of single-home schemes under the three
    #: loads) while barely moving unloaded per-op costs.
    agent_service_ms: float = 1.2
    #: Causal tracing: ``True`` collects spans (``result.tracer``), a path
    #: string additionally exports a Chrome trace there, a
    #: :class:`~repro.trace.Tracer` instance is used as-is.
    trace: object = None
    #: Time-series telemetry: ``True`` samples instruments into
    #: ``result.metrics``, a path string additionally exports the JSONL
    #: timeline there, a :class:`~repro.telemetry.MetricsRegistry`
    #: instance is used as-is.
    metrics: object = None
    #: Simulated-clock sampling period of the telemetry Sampler.
    metrics_interval_ms: float = 100.0
    #: Protocol-event flight recorder: ``True`` records into
    #: ``result.obs``, a :class:`~repro.obs.FlightRecorder` instance is
    #: used as-is (set ``dump_path`` there for fault auto-dumps).
    obs: object = None
    #: Optional :class:`~repro.faults.FaultPlan` replayed during the run
    #: (times are absolute simulated time, warmup included).
    faults: object = None
    #: Directory sharding (Concord schemes only): number of consistent-
    #: hash shards the home role is partitioned over (None = ring homes).
    shards: Optional[int] = None
    #: Replica-chain depth per shard (leader + followers).
    replication: int = 1
    #: Optional :class:`~repro.net.RegionTopology` for multi-region runs.
    regions: object = None
    #: Extra scheme-specific configuration splatted into the scheme
    #: builder (e.g. ``{"ttl_ms": 200.0}`` for read-through-ttl or
    #: ``{"wb_buffer_entries": 16}`` for write-behind); keys meant for
    #: other schemes are ignored by the builders.
    scheme_cfg: dict = field(default_factory=dict)

    def cpu_ms_per_request(self) -> float:
        """Average CPU demand of one request across the app mix."""
        demands = [
            ALL_PROFILES[name].functions * ALL_PROFILES[name].compute_ms
            for name in self.apps
        ]
        return sum(demands) / len(demands)

    def resolved_total_rps(self) -> float:
        if self.total_rps is not None:
            return self.total_rps
        cores = self.num_nodes * self.cores_per_node
        return self.utilization * cores * 1000.0 / self.cpu_ms_per_request()


@dataclass
class AppRunStats:
    """Per-application results of one run."""

    app: str
    mean_latency_ms: float
    p50_latency_ms: float
    p99_latency_ms: float
    completed: int
    storage_fraction: float


@dataclass
class MixedRunResult:
    """Everything the experiments extract from one run."""

    config: MixedRunConfig
    per_app: dict = field(default_factory=dict)      # app -> AppRunStats
    access: AccessStats = field(default_factory=AccessStats)
    #: app -> that app's own AccessStats (per-app schemes only; the shared
    #: OFC cache reports the same aggregate object for every app).
    per_app_access: dict = field(default_factory=dict)
    #: Per-sample (avg_sharers, max_sharers) over directory entries.
    sharer_samples: list = field(default_factory=list)
    #: app -> list of (avg_sharers, max_sharers) samples.
    sharer_samples_per_app: dict = field(default_factory=dict)
    #: Per-(app, node) peak cache occupancy in bytes.
    cache_peaks: dict = field(default_factory=dict)
    network_messages: int = 0
    storage_reads: int = 0
    storage_writes: int = 0
    #: The run's Tracer when ``config.trace`` was set (not fingerprinted).
    tracer: object = None
    #: The run's MetricsRegistry when ``config.metrics`` was set.
    metrics: object = None
    #: The run's FlightRecorder when ``config.obs`` was set.
    obs: object = None
    #: (sim_time, kind, detail) fault events applied (config.faults only).
    fault_log: list = field(default_factory=list)
    #: app -> the StorageAPI instance that served it (shared schemes map
    #: every app to the same object).  For post-run inspection — scheme
    #: invariant checks, staleness logs, loss counters.
    schemes: dict = field(default_factory=dict)

    def mean_latency(self) -> float:
        values = [s.mean_latency_ms for s in self.per_app.values() if s.completed]
        return sum(values) / len(values) if values else float("nan")


def _make_schemes(config, cluster, coord):
    """Build the per-app StorageAPI map through the scheme registry."""
    return build_scheme_map(
        config.scheme, cluster, coord, config.apps,
        capacity=config.cache_capacity,
        ofc_shared_capacity=config.ofc_shared_capacity,
        read_only_annotations=config.read_only_annotations,
        num_memory_nodes=config.num_nodes,
        shards=config.shards,
        replication=config.replication,
        **config.scheme_cfg,
    )


def _make_tracer(config) -> Optional[Tracer]:
    if not config.trace:
        return None
    return config.trace if isinstance(config.trace, Tracer) else Tracer()


def _make_registry(config) -> Optional[MetricsRegistry]:
    if not config.metrics:
        return None
    return (config.metrics if isinstance(config.metrics, MetricsRegistry)
            else MetricsRegistry())


def _make_recorder(config) -> Optional[FlightRecorder]:
    # isinstance first: an empty FlightRecorder is falsy (len() == 0).
    if isinstance(config.obs, FlightRecorder):
        return config.obs
    return FlightRecorder() if config.obs else None


def run_mixed_workload(config: MixedRunConfig) -> MixedRunResult:
    """Execute one measurement run and collect all metrics."""
    tracer = _make_tracer(config)
    registry = _make_registry(config)
    recorder = _make_recorder(config)
    sim = Simulator(seed=config.seed, tracer=tracer, metrics=registry,
                    obs=recorder)
    latency = replace(LatencyModel(), agent_service_ms=config.agent_service_ms)
    sim_config = SimConfig(
        num_nodes=config.num_nodes, cores_per_node=config.cores_per_node,
        latency=latency, regions=config.regions)
    cluster = Cluster(sim, sim_config)
    coord = CoordinationService(cluster.network, sim_config)
    spec = scheme_spec(config.scheme)
    schemes = _make_schemes(config, cluster, coord)
    platform = FaasPlatform(
        cluster, scheduler=make_scheduler(config.scheme, schemes))
    injector = None
    if config.faults is not None:
        # Any scheme exposing restart_instance participates in node
        # recovery (Concord agents, the zoo schemes); dedup by identity
        # because shared schemes appear once per app.
        restartable: list = []
        for scheme in schemes.values():
            if (hasattr(scheme, "restart_instance")
                    and not any(scheme is seen for seen in restartable)):
                restartable.append(scheme)
        injector = FaultInjector(
            cluster, config.faults, systems=restartable,
            platform=platform)
        injector.start()

    factories = {}
    deployed = {}
    for name in config.apps:
        profile = ALL_PROFILES[name]
        preload_storage(cluster.storage, profile)
        scheme = schemes[name]
        if spec.preload is not None:
            # Schemes acting as the terminal store prime themselves too.
            spec.preload(scheme, profile)
        deployed[name] = platform.deploy(build_app(profile), scheme)
        factories[name] = entity_inputs_factory(profile, sim)

    per_app_rps = config.resolved_total_rps() / len(config.apps)
    result = MixedRunResult(config=config)

    def load_phase(duration_ms):
        for name in config.apps:
            sim.spawn(
                platform.open_loop(name, per_app_rps, duration_ms, factories[name]),
                name=f"load:{name}",
            )

    # Warmup: populate caches, then reset every metric.
    load_phase(config.warmup_ms)
    sim.run(until=sim.now + config.warmup_ms + 500.0)
    for name, app in deployed.items():
        app.latency = Histogram()
        app.storage_ms_total = 0.0
        app.compute_ms_total = 0.0
        app.requests_completed = 0
        schemes[name].stats.reset()
    network_before = cluster.network.stats.messages
    storage_reads_before = cluster.storage.stats.reads
    storage_writes_before = cluster.storage.stats.writes

    # Sampler for sharer counts and cache occupancy (Concord only).
    def sampler(sim):
        while True:
            yield sim.timeout(config.sample_every_ms)
            counts = []
            for name in config.apps:
                scheme = schemes[name]
                if isinstance(scheme, ConcordSystem):
                    app_counts = scheme.sharer_counts()
                    counts.extend(app_counts)
                    if app_counts:
                        result.sharer_samples_per_app.setdefault(
                            name, []).append(
                            (sum(app_counts) / len(app_counts),
                             max(app_counts)))
                    for node_id, used in scheme.cache_bytes().items():
                        key = (name, node_id)
                        result.cache_peaks[key] = max(
                            result.cache_peaks.get(key, 0), used)
            if counts:
                result.sharer_samples.append(
                    (sum(counts) / len(counts), max(counts)))

    sim.spawn(sampler(sim), name="sampler", daemon=True)
    # Time-series telemetry sampling starts with the measurement phase,
    # so exported timelines cover measurement + drain (not warmup).
    metrics_sampler = Sampler(sim, interval_ms=config.metrics_interval_ms)
    metrics_sampler.start()

    # Measurement phase.
    load_phase(config.duration_ms)
    sim.run(until=sim.now + config.duration_ms + config.drain_ms)

    for name, app in deployed.items():
        histogram = app.latency
        result.per_app[name] = AppRunStats(
            app=name,
            mean_latency_ms=histogram.mean,
            p50_latency_ms=histogram.p50,
            p99_latency_ms=histogram.p99,
            completed=histogram.count,
            storage_fraction=app.storage_fraction,
        )
    # Merge access stats once per distinct scheme object (OFC is shared).
    seen: list = []
    for name, scheme in schemes.items():
        result.per_app_access[name] = scheme.stats
        if not any(scheme is merged for merged in seen):
            seen.append(scheme)
            result.access.merge(scheme.stats)
    result.network_messages = cluster.network.stats.messages - network_before
    result.storage_reads = cluster.storage.stats.reads - storage_reads_before
    result.storage_writes = cluster.storage.stats.writes - storage_writes_before
    result.tracer = tracer
    if tracer is not None and isinstance(config.trace, str):
        export_chrome(tracer, config.trace)
    metrics_sampler.stop()
    result.metrics = registry
    if registry is not None and isinstance(config.metrics, str):
        export_metrics_jsonl(registry, config.metrics)
    result.obs = recorder
    result.schemes = schemes
    if injector is not None:
        result.fault_log = list(injector.applied)
    return result


def unloaded_latency(
    scheme: str,
    apps: Optional[tuple] = None,
    num_nodes: int = 4,
    cores_per_node: int = 8,
    requests: int = 8,
    seed: int = 77,
) -> dict:
    """Per-app mean latency on an otherwise idle cluster (SLO baseline)."""
    config = MixedRunConfig(
        scheme=scheme, num_nodes=num_nodes, cores_per_node=cores_per_node,
        apps=apps or tuple(ALL_PROFILES), seed=seed,
    )
    sim = Simulator(seed=seed)
    sim_config = SimConfig(num_nodes=num_nodes, cores_per_node=cores_per_node)
    cluster = Cluster(sim, sim_config)
    coord = CoordinationService(cluster.network, sim_config)
    schemes = _make_schemes(config, cluster, coord)
    platform = FaasPlatform(
        cluster, scheduler=make_scheduler(config.scheme, schemes))
    latencies = {}
    for name in config.apps:
        profile = ALL_PROFILES[name]
        preload_storage(cluster.storage, profile)
        platform.deploy(build_app(profile), schemes[name])
        factory = entity_inputs_factory(profile, sim)
        histogram = Histogram()
        for index in range(requests):
            outcome = sim.run_until_complete(
                sim.spawn(platform.request(name, factory(index))),
                limit=sim.now + 600_000.0,
            )
            histogram.record(outcome.latency_ms)
        latencies[name] = histogram.mean
    return latencies
