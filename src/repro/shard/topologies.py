"""Named topology presets and the smoke scenarios the CI matrix runs.

Each :class:`Topology` bundles the knobs that turn the canonical fault
scenario (:func:`repro.faults.scenario.run_fault_scenario`) into one
cell of the CI topology matrix: directory sharding, replica-chain
depth, and the multi-region split.  The presets deliberately share one
cluster shape (``NUM_NODES`` nodes, same load) so their fingerprints
are comparable side by side and a divergence isolates the topology —
not the workload — as the cause.

Every preset also carries a *canonical smoke plan*: the minimal fault
schedule that exercises what the topology adds (crash the shard-0
leader for sharded cells, partition a region for regional cells).  CI
replays each plan twice per PYTHONHASHSEED and byte-compares the
outcome fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.plan import (
    FaultPlan,
    NodeCrash,
    NodeRestart,
    RegionPartition,
)
from repro.faults.scenario import SETTLE_MS, run_fault_scenario
from repro.shard.router import ShardRouter

#: Shared cluster shape for every matrix cell.
NUM_NODES = 4
DURATION_MS = 4000.0
RPS = 20.0

#: Regional cells need the longer drain: unreachability reports trail
#: the RPC timeout (~5 s), so eject/rejoin churn outlives the heal.
REGION_SETTLE_MS = 12000.0


@dataclass(frozen=True)
class Topology:
    """One named cell of the topology matrix."""

    name: str
    shards: Optional[int] = None
    replication: int = 1
    regions: Optional[int] = None
    settle_ms: float = SETTLE_MS
    description: str = ""

    def scenario_kwargs(self) -> dict:
        """Keyword arguments for :func:`run_fault_scenario`."""
        kwargs: dict = {"settle_ms": self.settle_ms}
        if self.shards is not None:
            kwargs["shards"] = self.shards
            kwargs["replication"] = self.replication
        if self.regions is not None:
            kwargs["regions"] = self.regions
        return kwargs


TOPOLOGIES: dict = {
    topology.name: topology
    for topology in (
        Topology(
            name="flat",
            description="single flat ring, no sharding (the PR 1 protocol)"),
        Topology(
            name="shard4",
            shards=4,
            description="4 directory shards, single-homed chains"),
        Topology(
            name="shard4rep",
            shards=4, replication=2,
            description="4 directory shards, leader + 1 mirror follower"),
        Topology(
            name="region2",
            shards=4, replication=2, regions=2,
            settle_ms=REGION_SETTLE_MS,
            description="sharded + replicated over two named regions"),
    )
}


def node_ids() -> list:
    """The matrix cluster's node ids."""
    return [f"node{i}" for i in range(NUM_NODES)]


def shard_leader(topology: Topology, shard: int = 0) -> str:
    """The node leading ``shard`` under ``topology`` at full membership.

    Deterministic (pure function of the membership set), so the smoke
    plan can target "the shard-0 leader" without running a simulation.
    """
    if topology.shards is None:
        raise ValueError(f"topology {topology.name!r} is not sharded")
    router = ShardRouter(node_ids(), num_shards=topology.shards,
                         replication=topology.replication)
    return router.leader_of(shard)


def smoke_plan(name: str) -> FaultPlan:
    """The canonical fault plan for matrix cell ``name``.

    - ``flat``: crash + restart one node (the PR 4 recovery path).
    - ``shard4`` / ``shard4rep``: crash + restart the *shard-0 leader*,
      forcing a deterministic failover (and, with replication, a mirror
      adoption) before the node rejoins.
    - ``region2``: partition ``region1`` away for 600 ms *and* crash
      the shard-0 leader — the combined case both acceptance fault
      classes must survive.
    """
    topology = TOPOLOGIES[name]
    if topology.shards is None:
        victim = node_ids()[1]
        return FaultPlan(events=(
            NodeCrash(at_ms=1500.0, node=victim),
            NodeRestart(at_ms=2600.0, node=victim),
        ))
    leader = shard_leader(topology)
    if topology.regions is None:
        return FaultPlan(events=(
            NodeCrash(at_ms=1500.0, node=leader),
            NodeRestart(at_ms=2600.0, node=leader),
        ))
    return FaultPlan(events=(
        NodeCrash(at_ms=1200.0, node=leader),
        RegionPartition(at_ms=1500.0, duration_ms=600.0, region="region1"),
    ))


def run_topology_scenario(name: str, seed: int = 0, plan=None, obs=None):
    """Run one matrix cell: the named topology under its smoke plan.

    ``plan`` overrides the canonical smoke plan (the nightly matrix
    passes randomized shard-aware plans); ``obs`` forwards to
    :func:`run_fault_scenario` to attach a flight recorder.
    """
    topology = TOPOLOGIES[name]
    if plan is None:
        plan = smoke_plan(name)
    return run_fault_scenario(
        plan, seed=seed, num_nodes=NUM_NODES,
        duration_ms=DURATION_MS, rps=RPS, obs=obs,
        **topology.scenario_kwargs(),
    )
