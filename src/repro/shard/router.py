"""Key→shard→home routing over the consistent-hash member ring.

A :class:`ShardRouter` is a drop-in replacement for
:class:`~repro.core.hashring.ConsistentHashRing` wherever the protocol
only needs ``home``/``members``/``add``/``remove``/``copy`` — which is
everywhere: agents, barriers, recovery, and domain changes all treat the
ring as an opaque "who owns this key" oracle.  The router answers that
question in two deterministic steps:

1. ``shard_of(key) = md5(key) % num_shards`` — stable across processes
   and ``PYTHONHASHSEED`` values, and *linear-hash splittable*: doubling
   ``num_shards`` sends each key of shard ``i`` to shard ``i`` or
   ``i + num_shards``, so a shard splits into exactly two.
2. Each shard's replica chain is the member ring's preference list for
   the shard's token (``"shard:<i>"``): the first ``replication``
   distinct members clockwise.  The chain head is the shard *leader* and
   the key's home.

Leader election and failover need no protocol state: the chain is a pure
function of the membership set, every agent computes it independently,
and removing a member preserves the relative order of the survivors —
so when a leader dies, the next replica in the chain is the new leader
on every node that learns of the failure, with no messages exchanged.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.hashring import ConsistentHashRing, EmptyRingError, _hash_cached


class ShardRouter:
    """Partition the home-node role into replica-chained shards."""

    def __init__(self, members: Iterable[str] = (), num_shards: int = 8,
                 replication: int = 1, virtual_nodes: int = 64):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.num_shards = num_shards
        self.replication = replication
        self._ring = ConsistentHashRing(members, virtual_nodes)
        #: shard -> replica chain (leader first); () while memberless.
        self._chains: list[tuple[str, ...]] = []
        self._rebuild()

    # -- shard resolution ---------------------------------------------------
    def shard_of(self, key: str) -> int:
        """The shard owning ``key`` (stable md5 hash, not ``hash()``)."""
        return _hash_cached(key) % self.num_shards

    def chain_of(self, shard: int) -> tuple[str, ...]:
        """Shard ``shard``'s replica chain, leader first."""
        return self._chains[shard]

    def leader_of(self, shard: int) -> str:
        """The member leading ``shard`` (its chain head)."""
        chain = self._chains[shard]
        if not chain:
            raise EmptyRingError(f"shard {shard} has no members")
        return chain[0]

    def followers(self, key: str) -> tuple[str, ...]:
        """Non-leader replicas of ``key``'s shard."""
        return self._chains[self.shard_of(key)][1:]

    def table(self) -> tuple[tuple[str, ...], ...]:
        """The full shard→chain table (order-stable; fingerprintable)."""
        return tuple(self._chains)

    def led_by(self, member: str) -> int:
        """How many shards ``member`` currently leads."""
        return sum(1 for chain in self._chains if chain and chain[0] == member)

    # -- ring-compatible surface -------------------------------------------
    @property
    def virtual_nodes(self) -> int:
        return self._ring.virtual_nodes

    @property
    def members(self) -> set[str]:
        return self._ring.members

    def __len__(self) -> int:
        return len(self._ring)

    def __contains__(self, member: str) -> bool:
        return member in self._ring

    def home(self, key: str) -> str:
        """The leader of ``key``'s shard."""
        return self.leader_of(self.shard_of(key))

    def preference_list(self, key: str, n: int) -> tuple[str, ...]:
        """First ``n`` entries of ``key``'s shard chain (ring fallback
        beyond the chain length)."""
        chain = self._chains[self.shard_of(key)]
        if len(chain) >= n:
            return chain[:n]
        return self._ring.preference_list(f"shard:{self.shard_of(key)}", n)

    def add(self, member: str) -> None:
        self._ring.add(member)
        self._rebuild()

    def remove(self, member: str) -> None:
        self._ring.remove(member)
        self._rebuild()

    def copy(self) -> "ShardRouter":
        return ShardRouter(self._ring.members, self.num_shards,
                           self.replication, self._ring.virtual_nodes)

    def with_members(self, members: Iterable[str]) -> "ShardRouter":
        """A new router over ``members`` with this router's parameters."""
        return ShardRouter(members, self.num_shards, self.replication,
                           self._ring.virtual_nodes)

    def successor(self, member: str) -> Optional[str]:
        return self._ring.successor(member)

    def rehomed_keys(self, keys: Iterable[str], member: str) -> dict[str, str]:
        """For each key homed at ``member``, its new home once it leaves."""
        if not self._ring.members:
            raise EmptyRingError(
                f"cannot re-home keys from {member!r}: hash ring is empty")
        if self._ring.members == {member}:
            raise EmptyRingError(
                f"cannot re-home keys from {member!r}: removing the last "
                "member leaves the ring empty")
        without = self.copy()
        if member in without:
            without.remove(member)
        return {
            key: without.home(key)
            for key in keys
            if self.home(key) == member
        }

    # -- splitting ----------------------------------------------------------
    def split(self) -> None:
        """Double ``num_shards`` (linear-hash split: every shard in two).

        ``md5 % 2n`` maps each key of old shard ``i`` to ``i`` or
        ``i + n``, so a split never mixes keys across old shard
        boundaries and the key→shard map stays deterministic.
        """
        self.num_shards *= 2
        self._rebuild()

    # -- internals ----------------------------------------------------------
    def _rebuild(self) -> None:
        if len(self._ring):
            self._chains = [
                self._ring.preference_list(f"shard:{shard}", self.replication)
                for shard in range(self.num_shards)
            ]
        else:
            self._chains = [() for _ in range(self.num_shards)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardRouter(shards={self.num_shards}, "
                f"replication={self.replication}, "
                f"members={sorted(self._ring.members)})")
