"""Sharded directory topologies for the Concord coherence protocol.

The flat protocol homes every key directly on the member ring.  This
package partitions the directory/home-node role into a fixed number of
*shards* (consistent ``hash(key) % num_shards``), assigns each shard a
deterministic replica chain of members via the ring's preference list,
and routes a key to its shard's chain head (the *leader*).

Public surface:

- :class:`~repro.shard.router.ShardRouter` -- drop-in ring replacement
  with key→shard→home resolution, replica chains, and linear-hash
  splitting.
- :class:`~repro.shard.manager.ShardManager` -- per-system bookkeeping:
  re-homing epochs, failover accounting, telemetry, ``shard.*`` events.
- :mod:`~repro.shard.topologies` -- named topology presets and the
  smoke scenarios the CI topology matrix runs.
"""

from repro.shard.router import ShardRouter
from repro.shard.manager import ShardManager
from repro.shard.topologies import (
    TOPOLOGIES,
    Topology,
    run_topology_scenario,
    smoke_plan,
)

__all__ = ["ShardRouter", "ShardManager", "TOPOLOGIES", "Topology",
           "run_topology_scenario", "smoke_plan"]
