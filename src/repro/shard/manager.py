"""Shard bookkeeping for a sharded :class:`ConcordSystem`.

The :class:`ShardManager` watches the controller's authoritative
:class:`~repro.shard.router.ShardRouter` across membership changes and
keeps the scoreboard the verifier, telemetry, and experiments read:

- **re-homing epochs** — a per-shard counter bumped every time the
  shard's leader changes (crash failover, graceful leave, scale-out
  join).  The verifier uses epochs to phrase its "no stale copies
  survive a shard move" check per epoch transition.
- **failover vs voluntary re-home accounting** — a leader change caused
  by a *failure* is a failover (the chain's next replica takes over); a
  change caused by join/leave is a voluntary re-home.
- **adoption accounting** — when replication is on, the new leader
  adopts its mirrored directory entries; the count and the sim-time cost
  charged for it are recorded here.

All counts are exported as telemetry counters and emitted as
``shard.*`` flight-recorder events, so a topology run's re-homing story
shows up in both the metrics export and the post-mortem timeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.events import SHARD_ADOPT, SHARD_FAILOVER, SHARD_REHOME, SHARD_SPLIT

if TYPE_CHECKING:  # pragma: no cover
    from repro.shard.router import ShardRouter


class ShardManager:
    """Epoch, failover, and adoption accounting for one sharded system."""

    def __init__(self, system, router: "ShardRouter"):
        self.system = system
        self.sim = system.sim
        self.app = system.app
        self.num_shards = router.num_shards
        self.replication = router.replication
        #: per-shard leader-change count (grows in place on split).
        self.epochs: list[int] = [0] * router.num_shards
        #: last known leader table, diffed on every membership change.
        self._leaders: list[str] = [
            chain[0] if chain else "" for chain in router.table()]
        self.rehomes_total = 0
        self.failovers_total = 0
        self.adoptions_total = 0
        self.adopted_entries_total = 0
        self.rehome_cost_ms_total = 0.0
        self.splits_total = 0
        self._register_metrics()

    def _register_metrics(self) -> None:
        metrics = self.sim.metrics
        if not metrics.active:
            return
        metrics.counter(
            "shard_rehomes_total",
            "Shard leader changes from any membership change.",
            labelnames=("app",),
        ).set_callback(lambda: self.rehomes_total, app=self.app)
        metrics.counter(
            "shard_failovers_total",
            "Shard leader changes caused by a member failure.",
            labelnames=("app",),
        ).set_callback(lambda: self.failovers_total, app=self.app)
        metrics.counter(
            "shard_adopted_entries_total",
            "Mirrored directory entries adopted by new shard leaders.",
            labelnames=("app",),
        ).set_callback(lambda: self.adopted_entries_total, app=self.app)
        gauge = metrics.gauge(
            "shard_leaders",
            "Shards currently led by each node.",
            labelnames=("app", "node", "scheme"),
        )
        for node in sorted(self.system.cluster.node_ids):
            gauge.set_callback(
                self._leader_count_callback(node),
                app=self.app, node=node, scheme="concord")

    def _leader_count_callback(self, node: str):
        return lambda: self._leaders.count(node)

    # -- membership-driven re-homing ---------------------------------------
    def record_membership_change(self, router: "ShardRouter", member: str,
                                 kind: str) -> list[int]:
        """Diff the leader table after a membership change.

        ``kind`` is ``"failed"`` for crash-driven changes, ``"join"`` or
        ``"leave"`` for voluntary domain changes.  Returns the shards
        whose leader moved.
        """
        new_leaders = [chain[0] if chain else ""
                       for chain in router.table()]
        moved = [shard for shard in range(self.num_shards)
                 if new_leaders[shard] != self._leaders[shard]]
        obs = self.sim.obs
        for shard in moved:
            self.epochs[shard] += 1
            self.rehomes_total += 1
            if kind == "failed":
                self.failovers_total += 1
            if obs.active:
                event = SHARD_FAILOVER if kind == "failed" else SHARD_REHOME
                obs.emit(event, app=self.app, shard=shard,
                         old_leader=self._leaders[shard],
                         new_leader=new_leaders[shard],
                         epoch=self.epochs[shard], cause=kind)
        self._leaders = new_leaders
        return moved

    # -- failover adoption --------------------------------------------------
    def record_adoption(self, node_id: str, shards: list[int],
                        entries: int, cost_ms: float) -> None:
        """A new leader adopted its mirrors for ``shards``."""
        self.adoptions_total += 1
        self.adopted_entries_total += entries
        self.rehome_cost_ms_total += cost_ms
        obs = self.sim.obs
        if obs.active:
            obs.emit(SHARD_ADOPT, app=self.app, node=node_id,
                     shards=sorted(shards), entries=entries,
                     cost_ms=cost_ms)

    # -- splitting ----------------------------------------------------------
    def record_split(self, router: "ShardRouter") -> None:
        """The router doubled its shard count (linear-hash split).

        Old shard ``i`` split into ``i`` and ``i + old_count``; the new
        half inherits the old half's epoch so cross-epoch checks stay
        monotonic over the split.
        """
        old_count = self.num_shards
        self.num_shards = router.num_shards
        self.epochs = self.epochs + self.epochs[: self.num_shards - old_count]
        self._leaders = [chain[0] if chain else ""
                        for chain in router.table()]
        self.splits_total += 1
        obs = self.sim.obs
        if obs.active:
            obs.emit(SHARD_SPLIT, app=self.app, old_shards=old_count,
                     new_shards=self.num_shards)
