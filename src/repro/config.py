"""Global calibration constants for the simulated cluster.

All times are in **milliseconds** of simulated time.  The constants are
calibrated against the numbers the paper states explicitly (Sections
III-C2, VI-A, VI-B and Figure 3):

- a round trip to global storage takes ~30 ms,
- an internode invalidation round trip takes ~2 ms,
- a local cache read hit in Concord takes ~1.6 ms (runtime interception +
  local lookup),
- fetching and checking a version number costs about the same as fetching
  the data itself for payloads of 64 KB or less.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class LatencyModel:
    """Latency parameters shared by all simulated components.

    The per-message network cost decomposes as::

        one_way = rpc_overhead + payload_bytes / serialization_bytes_per_ms
                  + internode_rtt / 2

    which reproduces the Figure-3 curve: a fixed-size version probe and a
    <=64 KB data fetch cost about the same, while multi-hundred-KB payloads
    are dominated by the serialization term.
    """

    #: Round trip to global storage (paper Section VI-B: "a round trip to
    #: storage takes around 30ms").
    storage_rtt: float = 30.0

    #: Whole-stack internode round trip (paper Section VI-E: "~2ms").
    internode_rtt: float = 2.0

    #: Local cache access, including runtime interception of the storage
    #: API call (calibrated to Concord's 1.6 ms local read hit).
    local_access: float = 1.6

    #: Fixed per-RPC software overhead (gRPC encoding, dispatch).
    rpc_overhead: float = 0.2

    #: CPU time a cache-agent server spends accepting one request.  Hot
    #: home agents serialize on this, which is the contention-point
    #: effect Concord's design minimizes (Section III, "minimize
    #: contention").
    agent_service_ms: float = 0.3

    #: Sender-side cost of putting one message on the wire (syscall + NIC
    #: doorbell).  Fan-out sends serialize on this, which is why the
    #: paper's write latency creeps from 30 ms to 32.4 ms as the sharer
    #: count grows to 30 (Figure 11).
    send_ms: float = 0.08

    #: Effective serialization throughput in bytes per millisecond.  At
    #: 100 KB/ms, a 64 KB payload adds 0.64 ms (comparable to the 2 ms
    #: version probe) while a 1 MB payload adds ~10 ms (clearly larger),
    #: matching Figure 3's crossover.
    serialization_bytes_per_ms: float = 100.0 * KB

    #: Storage-side per-byte cost (blob service ingestion/egestion).
    storage_bytes_per_ms: float = 200.0 * KB

    def one_way(self, payload_bytes: int = 0) -> float:
        """Time for one internode message carrying ``payload_bytes``."""
        return (
            self.rpc_overhead
            + payload_bytes / self.serialization_bytes_per_ms
            + self.internode_rtt / 2.0
        )

    def round_trip(self, payload_bytes: int = 0) -> float:
        """Internode request/response pair; payload travels one way."""
        return self.one_way() + self.one_way(payload_bytes)

    def storage_read(self, payload_bytes: int = 0) -> float:
        """Round trip to global storage returning ``payload_bytes``."""
        return self.storage_rtt + payload_bytes / self.storage_bytes_per_ms

    def storage_write(self, payload_bytes: int = 0) -> float:
        """Round trip to global storage sending ``payload_bytes``."""
        return self.storage_rtt + payload_bytes / self.storage_bytes_per_ms


@dataclass(frozen=True)
class SimConfig:
    """Top-level configuration for a simulated cluster run."""

    #: Number of compute nodes in the cluster (paper: 16).
    num_nodes: int = 16

    #: Cores per node (paper: Intel Xeon Silver, 20 cores).
    cores_per_node: int = 20

    #: Memory per node in bytes (paper: 192 GB; we only track the slice
    #: relevant to FaaS containers).
    memory_per_node: int = 192 * 1024 * MB

    #: Per-container memory allocation (paper: 128 MB OpenWhisk minimum).
    container_memory: int = 128 * MB

    #: Container keep-alive grace period (paper Section III-D: ~10 min).
    grace_period_ms: float = 10.0 * 60.0 * 1000.0

    #: Heartbeat interval of the coordination service.
    heartbeat_interval_ms: float = 500.0

    #: Heartbeats missed before a node is declared failed.
    heartbeat_misses: int = 3

    #: RPC timeout after which a peer is reported unreachable.
    rpc_timeout_ms: float = 5000.0

    #: Latency model shared by all components.
    latency: LatencyModel = field(default_factory=LatencyModel)

    #: Optional :class:`~repro.net.regions.RegionTopology` layering a
    #: multi-region network model over the cluster: cross-region messages
    #: and storage operations pay the region pair's extra RTT on top of
    #: the base latency model.  ``None`` keeps the flat single-region
    #: fabric.
    regions: object = None

    #: Root RNG seed; every component derives a named substream.
    seed: int = 0x5EED

    @property
    def failure_detection_ms(self) -> float:
        """Worst-case time for the coordination service to notice a crash."""
        return self.heartbeat_interval_ms * self.heartbeat_misses
