"""OFC baseline: per-node shared caches, single home per data item.

Each data item can be cached *only* at its home node (hash of the key over
all cluster nodes), so there is no replication and no coherence — but every
access from a non-home node is remote (paper Sections II-C and Figure 2a).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.caching.base import (
    CacheEntry,
    LruCache,
    StorageAPI,
    VALID,
    register_cache_gauges,
    register_scheme_metrics,
)
from repro.config import MB
from repro.core.hashring import ConsistentHashRing
from repro.metrics import AccessStats, OpKind
from repro.net.rpc import DEFAULT_RPC_TIMEOUT_MS, INHERIT, Endpoint, Reply
from repro.net.sizes import sizeof

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster


class _OfcAgent:
    """Per-node cache server holding the items homed at this node."""

    def __init__(self, system: "OfcSystem", node_id: str):
        self.system = system
        self.node_id = node_id
        self.cache = LruCache(system.capacity_per_node, name=f"ofc:{node_id}")
        self.endpoint = Endpoint(
            system.cluster.network, node_id, "ofc",
            service_time_ms=system.cluster.config.latency.agent_service_ms,
            cpu=system.cluster.nodes[node_id].cores,
        )
        self.endpoint.register_handler("read", self._handle_read)
        self.endpoint.register_handler("write", self._handle_write)

    def read_local(self, key: str):
        """Serve a read at the home node; returns (value, was_cached)."""
        entry = self.cache.get(key)
        if entry is not None:
            return entry.value, True
        value, _version = yield from self.system.cluster.storage.read(key)
        if value is not None:
            self._insert(key, value)
        return value, False

    def write_local(self, key: str, value: object):
        """Write-through at the home node."""
        self._insert(key, value)
        yield from self.system.cluster.storage.write(key, value, writer=self.node_id)

    def _insert(self, key: str, value: object) -> None:
        size = sizeof(value)
        if size <= self.cache.capacity_bytes:
            self.cache.put(CacheEntry(key=key, value=value, state=VALID, size_bytes=size))

    # -- RPC handlers ---------------------------------------------------------
    def _handle_read(self, endpoint, src, key):
        value, cached = yield from self.read_local(key)
        return Reply((value, cached), size_bytes=sizeof(value))

    def _handle_write(self, endpoint, src, args):
        key, value = args
        yield from self.write_local(key, value)
        return Reply(True, size_bytes=1)


class OfcSystem(StorageAPI):
    """Cluster-wide OFC caching layer."""

    name = "ofc"
    #: Single-copy: every key lives at exactly one ring home.
    consistency = "single-copy"

    def __init__(self, cluster: "Cluster", capacity_per_node: int = 64 * MB):
        self.cluster = cluster
        self.sim = cluster.sim
        self.capacity_per_node = capacity_per_node
        self.ring = ConsistentHashRing(cluster.node_ids)
        self.agents = {nid: _OfcAgent(self, nid) for nid in cluster.node_ids}
        self._stats = AccessStats()
        # OFC caches are node-wide, shared across applications.
        register_scheme_metrics(self.sim.metrics, self, app="shared")
        if self.sim.metrics.active:
            for node_id, agent in self.agents.items():
                register_cache_gauges(self.sim.metrics, agent.cache,
                                      scheme=self.name, app="shared",
                                      node=node_id)

    @property
    def stats(self) -> AccessStats:
        return self._stats

    def home_of(self, key: str) -> str:
        return self.ring.home(key)

    def _do_read(self, node_id: str, key: str, ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        home = self.home_of(key)
        if home == node_id:
            value, cached = yield from self.agents[node_id].read_local(key)
            kind = OpKind.LOCAL_READ_HIT if cached else OpKind.READ_MISS
        else:
            requester = self.agents[node_id].endpoint
            value, cached = yield from requester.call(
                f"{home}/ofc", "read", key, size_bytes=len(key),
                timeout=DEFAULT_RPC_TIMEOUT_MS,
                trace=INHERIT,
            )
            kind = OpKind.REMOTE_READ_HIT if cached else OpKind.READ_MISS
        self._stats.record(kind, self.sim.now - start)
        return value

    def _do_write(self, node_id: str, key: str, value: object, ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        home = self.home_of(key)
        if home == node_id:
            yield from self.agents[node_id].write_local(key, value)
            kind = OpKind.LOCAL_WRITE_HIT
        else:
            requester = self.agents[node_id].endpoint
            yield from requester.call(
                f"{home}/ofc", "write", (key, value),
                size_bytes=sizeof(value), timeout=DEFAULT_RPC_TIMEOUT_MS,
                trace=INHERIT,
            )
            kind = OpKind.REMOTE_WRITE_HIT
        self._stats.record(kind, self.sim.now - start)
        return None
