"""Software cache substrate and baseline caching schemes.

- :mod:`repro.caching.base` -- byte-accounted LRU cache instance and the
  abstract ``StorageAPI`` all schemes implement.
- :mod:`repro.caching.nocache` -- direct-to-storage (Figure 1 breakdown).
- :mod:`repro.caching.ofc` -- OFC: single-home per-node shared cache.
- :mod:`repro.caching.faast` -- Faa$T: per-app caches, version protocol.
"""

from repro.caching.base import (
    AccessContext,
    CacheEntry,
    EvictionPinned,
    LruCache,
    StorageAPI,
)
from repro.caching.nocache import DirectStorage
from repro.caching.ofc import OfcSystem
from repro.caching.faast import FaastSystem

__all__ = [
    "AccessContext",
    "CacheEntry",
    "DirectStorage",
    "EvictionPinned",
    "FaastSystem",
    "LruCache",
    "OfcSystem",
    "StorageAPI",
]
