"""Byte-accounted LRU cache instances and the abstract storage API.

Every caching scheme in this package (OFC, Faa$T, Concord, Apta) stores
data in :class:`LruCache` instances and exposes the same :class:`StorageAPI`
to function code, so workloads are scheme-agnostic.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Generator, Iterable, Optional

from repro.metrics import AccessStats
from repro.metrics.stats import OpKind
from repro.net.sizes import sizeof
from repro.obs.events import CACHE_EVICT
from repro.obs.recorder import NULL_RECORDER

# Cache entry coherence states (paper Section III-C1: MESI without M).
EXCLUSIVE = "E"
SHARED = "S"
# Baselines without a coherence protocol use VALID.
VALID = "V"


class EvictionPinned(Exception):
    """Raised when an insert cannot fit because pinned entries fill the cache."""


@dataclass
class AccessContext:
    """Attribution for one storage operation.

    Passed by the platform into :meth:`StorageAPI.read`/``write`` so
    schemes can attribute traffic: Concord's placement learning uses
    ``function``; transactions use ``txn_id`` to tag speculative state.
    """

    function: str = ""
    invocation_id: int = 0
    txn_id: Optional[str] = None


@dataclass
class CacheEntry:
    """One cached data item."""

    key: str
    value: object
    state: str = VALID
    size_bytes: int = 0
    #: Version number (used by the Faa$T protocol).
    version: int = 0
    #: Transactional speculation marks: process ids that speculatively
    #: read / wrote this entry (used by repro.txn).
    spec_readers: set = field(default_factory=set)
    spec_writer: Optional[str] = None
    #: Pinned entries are never evicted (in-flight protocol operations,
    #: buffered speculative writes).
    pinned: bool = False

    @property
    def speculative(self) -> bool:
        return bool(self.spec_readers) or self.spec_writer is not None


class LruCache:
    """An LRU cache with byte-size accounting and dynamic capacity.

    Capacity may shrink at runtime (the cache agent returns memory to the
    application, paper Section III-E); shrinking evicts LRU entries.  An
    insert larger than the capacity is refused (large objects are cached
    only if sufficient unused memory is available).
    """

    #: Flight recorder for silent-eviction events.  Class-level Null
    #: default: the cache itself has no simulator, so owners that do
    #: (the coherence agents) overwrite it per instance with ``sim.obs``.
    obs = NULL_RECORDER

    def __init__(self, capacity_bytes: int, name: str = ""):
        if capacity_bytes < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._used_bytes = 0
        self.evictions = 0
        #: High-water mark of bytes used (Figure 12 reports max memory).
        self.peak_bytes = 0

    # -- inspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def keys(self) -> Iterable[str]:
        return list(self._entries.keys())

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Look up without touching recency."""
        return self._entries.get(key)

    # -- access ---------------------------------------------------------------
    def get(self, key: str) -> Optional[CacheEntry]:
        """Look up ``key``, refreshing its recency."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, entry: CacheEntry) -> list[CacheEntry]:
        """Insert/replace ``entry``; returns the entries evicted to fit.

        Raises :class:`EvictionPinned` if pinned entries make it impossible
        to free enough space; refuses (returns without caching) values
        larger than the whole capacity by raising ``ValueError``.
        """
        size = entry.size_bytes or sizeof(entry.value)
        entry.size_bytes = size
        if size > self.capacity_bytes:
            raise ValueError(
                f"entry {entry.key!r} ({size}B) exceeds cache capacity "
                f"({self.capacity_bytes}B)"
            )
        old = self._entries.pop(entry.key, None)
        if old is not None:
            self._used_bytes -= old.size_bytes
        evicted = self._make_room(size)
        self._entries[entry.key] = entry
        self._used_bytes += size
        self.peak_bytes = max(self.peak_bytes, self._used_bytes)
        return evicted

    def remove(self, key: str) -> Optional[CacheEntry]:
        """Drop ``key`` (invalidation or silent eviction)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used_bytes -= entry.size_bytes
        return entry

    def resize(self, capacity_bytes: int) -> list[CacheEntry]:
        """Change capacity; shrinking evicts LRU entries to fit."""
        if capacity_bytes < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity_bytes = capacity_bytes
        evicted = []
        for key in list(self._entries):
            if self._used_bytes <= capacity_bytes:
                break
            entry = self._entries[key]
            if entry.pinned:
                continue
            evicted.append(self._evict(key))
        return evicted

    def clear(self) -> list[CacheEntry]:
        """Drop everything (cache instance teardown / squash flush)."""
        dropped = list(self._entries.values())
        self._entries.clear()
        self._used_bytes = 0
        return dropped

    # -- internals -------------------------------------------------------------
    def _make_room(self, size: int) -> list[CacheEntry]:
        evicted = []
        while self._used_bytes + size > self.capacity_bytes:
            victim_key = None
            for key, entry in self._entries.items():  # LRU order
                if not entry.pinned:
                    victim_key = key
                    break
            if victim_key is None:
                raise EvictionPinned(
                    f"cache {self.name!r}: pinned entries block insert of {size}B"
                )
            evicted.append(self._evict(victim_key))
        return evicted

    def _evict(self, key: str) -> CacheEntry:
        entry = self._entries.pop(key)
        self._used_bytes -= entry.size_bytes
        self.evictions += 1
        obs = self.obs
        if obs.active:
            obs.emit(CACHE_EVICT, node=self.name, key=key,
                     state=entry.state, size=entry.size_bytes)
        return entry


class StorageAPI(abc.ABC):
    """The storage interface exposed to function code.

    ``read`` and ``write`` are generators (simulation sub-processes): use
    them with ``yield from`` inside function handlers.  ``ctx`` carries the
    invocation context (node, function name, inputs) so schemes that care —
    Concord's placement learning, transactions — can attribute traffic.

    ``read``/``write`` are template methods: they open one ``op`` trace
    span per logical operation — so every scheme traces uniformly, and
    the span's duration is exactly the interval each scheme records into
    its latency histograms — then delegate to the scheme's ``_do_read``/
    ``_do_write``.  Subclasses must expose the simulator as ``self.sim``
    (every scheme in this package does).
    """

    #: Scheme name for reporting.
    name: str = "abstract"
    #: The consistency level the scheme guarantees, for catalogues and
    #: the scheme-dispatched invariant checker.  Every concrete scheme
    #: must declare its own (the SCH01 analysis rule enforces this):
    #: e.g. "sequential", "eventual", "bounded-staleness", "causal".
    consistency: str = ""

    def read(self, node_id: str, key: str, ctx: Optional[object] = None) -> Generator:
        """Read ``key`` from the perspective of ``node_id``; returns value.

        Plain dispatcher: with tracing off it returns the scheme's
        ``_do_read`` generator directly (no wrapper frame on the hot
        path); ``yield from`` callers see identical behaviour.
        """
        if not self.sim.tracer.active:
            return self._do_read(node_id, key, ctx)
        return self._traced_read(node_id, key, ctx)

    def _traced_read(self, node_id: str, key: str, ctx: Optional[object]) -> Generator:
        with self.sim.tracer.span("read", "op",
                                  scheme=self.name, node=node_id, key=key):
            return (yield from self._do_read(node_id, key, ctx))

    def write(
        self, node_id: str, key: str, value: object, ctx: Optional[object] = None
    ) -> Generator:
        """Write ``key`` from ``node_id``; returns when durably stored."""
        if not self.sim.tracer.active:
            return self._do_write(node_id, key, value, ctx)
        return self._traced_write(node_id, key, value, ctx)

    def _traced_write(
        self, node_id: str, key: str, value: object, ctx: Optional[object]
    ) -> Generator:
        with self.sim.tracer.span("write", "op",
                                  scheme=self.name, node=node_id, key=key):
            return (yield from self._do_write(node_id, key, value, ctx))

    @abc.abstractmethod
    def _do_read(
        self, node_id: str, key: str, ctx: Optional[object] = None
    ) -> Generator:
        """Scheme-specific read path (wrapped in the ``op`` span)."""

    @abc.abstractmethod
    def _do_write(
        self, node_id: str, key: str, value: object, ctx: Optional[object] = None
    ) -> Generator:
        """Scheme-specific write path (wrapped in the ``op`` span)."""

    @property
    @abc.abstractmethod
    def stats(self) -> AccessStats:
        """Aggregate access statistics for reporting."""


def register_scheme_metrics(registry, scheme: StorageAPI, app: str) -> None:
    """Register pull instruments over a scheme's :class:`AccessStats`.

    Every scheme constructor calls this, so all schemes expose the same
    telemetry families: per-kind op counters, read/hit counters, and the
    cumulative hit ratio.  Callbacks re-read ``scheme.stats`` on every
    sample (never captured sub-objects — ``AccessStats.reset()`` at
    end-of-warmup replaces some of them), which also means the sampled
    counters step backwards once at the warmup cut; windowed consumers
    should treat negative deltas as a phase boundary.
    """
    if not registry.active:
        return
    name = scheme.name
    ops = registry.counter(
        "cache_ops_total", "Storage operations by classification.",
        labelnames=("app", "op", "scheme"))
    for kind in OpKind:
        ops.set_callback(lambda kind=kind: scheme.stats.ops.get(kind, 0),
                         scheme=name, app=app, op=kind.value)
    registry.counter(
        "cache_reads_total", "Read operations served.",
        labelnames=("app", "scheme"),
    ).set_callback(lambda: scheme.stats.reads, scheme=name, app=app)

    def read_hits() -> int:
        stats = scheme.stats
        return (stats.count(OpKind.LOCAL_READ_HIT)
                + stats.count(OpKind.REMOTE_READ_HIT))

    registry.counter(
        "cache_read_hits_total", "Reads served from some cache instance.",
        labelnames=("app", "scheme"),
    ).set_callback(read_hits, scheme=name, app=app)

    def hit_ratio() -> float:
        reads = scheme.stats.reads
        # 0.0 (not NaN) before the first read keeps exports JSON-clean.
        return read_hits() / reads if reads else 0.0

    registry.gauge(
        "cache_hit_ratio", "Cumulative read hit ratio.",
        labelnames=("app", "scheme"),
    ).set_callback(hit_ratio, scheme=name, app=app)


def register_cache_gauges(registry, cache: LruCache, scheme: str, app: str,
                          node: str) -> None:
    """Register occupancy/eviction instruments for one cache instance."""
    if not registry.active:
        return
    registry.gauge(
        "cache_occupancy_bytes", "Bytes resident in the cache instance.",
        labelnames=("app", "node", "scheme"),
    ).set_callback(lambda: cache.used_bytes, scheme=scheme, app=app,
                   node=node)
    registry.counter(
        "cache_evictions_total", "Entries evicted to make room.",
        labelnames=("app", "node", "scheme"),
    ).set_callback(lambda: cache.evictions, scheme=scheme, app=app,
                   node=node)
