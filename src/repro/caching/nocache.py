"""Direct-to-storage access path (no caching).

Used for the Figure-1 breakdown: every read/write pays the full global
storage round trip, showing why FaaS response time is dominated by storage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.caching.base import StorageAPI, register_scheme_metrics
from repro.metrics import AccessStats, OpKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster


class DirectStorage(StorageAPI):
    """Every operation goes straight to global storage."""

    name = "nocache"
    #: Every access is a storage round trip; storage is linearizable.
    consistency = "strong"

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.sim = cluster.sim
        self._stats = AccessStats()
        register_scheme_metrics(self.sim.metrics, self, app="shared")

    @property
    def stats(self) -> AccessStats:
        return self._stats

    def _do_read(self, node_id: str, key: str, ctx: Optional[object] = None):
        start = self.sim.now
        value, _version = yield from self.cluster.storage.read(key)
        self._stats.record(OpKind.READ_MISS, self.sim.now - start)
        return value

    def _do_write(self, node_id: str, key: str, value: object, ctx: Optional[object] = None):
        start = self.sim.now
        yield from self.cluster.storage.write(key, value, writer=node_id)
        self._stats.record(OpKind.WRITE_MISS, self.sim.now - start)
        return None
