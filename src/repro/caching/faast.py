"""Faa$T baseline: per-application caches with a versioning protocol.

Each application has a cache instance on every node that hosts it; data may
be replicated.  Coherence is maintained by version numbers: a non-home read
first fetches the item's version from the home and compares it with the
locally cached version (paper Section II-C).  We implement the *optimized*
variant the paper compares against: the home caches version numbers, so
version probes do not touch global storage.

Optionally, keys annotated read-only skip version checks entirely
(Related Work, Section VIII).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.caching.base import (
    CacheEntry,
    LruCache,
    StorageAPI,
    VALID,
    register_cache_gauges,
    register_scheme_metrics,
)
from repro.config import MB
from repro.core.hashring import ConsistentHashRing
from repro.metrics import AccessStats, OpKind
from repro.net.rpc import DEFAULT_RPC_TIMEOUT_MS, INHERIT, Endpoint, Reply
from repro.net.sizes import sizeof

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster


class _FaastInstance:
    """Per-node cache instance of one application."""

    def __init__(self, system: "FaastSystem", node_id: str):
        self.system = system
        self.node_id = node_id
        self.cache = LruCache(system.capacity_per_instance, name=f"faast:{node_id}")
        #: Home-side version map: latest version of keys homed here.  Kept
        #: even for keys whose data was evicted (the optimization).
        self.versions: dict[str, int] = {}
        self.endpoint = Endpoint(
            system.cluster.network, node_id, f"faast-{system.app}",
            service_time_ms=system.cluster.config.latency.agent_service_ms,
            cpu=system.cluster.nodes[node_id].cores,
        )
        self.endpoint.register_handler("check_version", self._handle_check_version)
        self.endpoint.register_handler("fetch", self._handle_fetch)
        self.endpoint.register_handler("write", self._handle_write)

    # -- home-side operations ------------------------------------------------
    def home_version(self, key: str):
        """Latest version of a key homed here (storage probe on cold miss)."""
        if key not in self.versions:
            version = yield from self.system.cluster.storage.read_version(key)
            self.versions[key] = version
        return self.versions[key]

    def home_fetch(self, key: str):
        """Data + version from the home; returns (value, version, cached)."""
        entry = self.cache.get(key)
        version = yield from self.home_version(key)
        if entry is not None and entry.version == version:
            return entry.value, version, True
        value, version = yield from self.system.cluster.storage.read(key)
        self.versions[key] = version
        if value is not None:
            self._insert(key, value, version)
        return value, version, False

    def home_write(self, key: str, value: object):
        """Write-through at the home; returns the new version."""
        new_version = yield from self.system.cluster.storage.write(
            key, value, writer=self.node_id
        )
        self.versions[key] = new_version
        self._insert(key, value, new_version)
        return new_version

    def _insert(self, key: str, value: object, version: int) -> None:
        size = sizeof(value)
        if size <= self.cache.capacity_bytes:
            self.cache.put(CacheEntry(
                key=key, value=value, state=VALID, size_bytes=size, version=version,
            ))

    # -- RPC handlers -----------------------------------------------------------
    def _handle_check_version(self, endpoint, src, key):
        version = yield from self.home_version(key)
        return Reply(version, size_bytes=8)

    def _handle_fetch(self, endpoint, src, key):
        value, version, cached = yield from self.home_fetch(key)
        return Reply((value, version, cached), size_bytes=sizeof(value) + 8)

    def _handle_write(self, endpoint, src, args):
        key, value = args
        version = yield from self.home_write(key, value)
        return Reply(version, size_bytes=8)


class FaastSystem(StorageAPI):
    """Per-application Faa$T caching layer."""

    name = "faast"
    #: Reads validate cached versions against the key's home.
    consistency = "version-checked"

    def __init__(
        self,
        cluster: "Cluster",
        app: str = "app",
        node_ids: Optional[Iterable[str]] = None,
        capacity_per_instance: int = 64 * MB,
        read_only_keys: Optional[set] = None,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.app = app
        self.capacity_per_instance = capacity_per_instance
        members = list(node_ids) if node_ids is not None else cluster.node_ids
        self.ring = ConsistentHashRing(members)
        self.instances = {nid: _FaastInstance(self, nid) for nid in members}
        #: Keys annotated read-only by the developer (skip version checks).
        self.read_only_keys = read_only_keys or set()
        self._stats = AccessStats()
        register_scheme_metrics(self.sim.metrics, self, app)
        if self.sim.metrics.active:
            for node_id, instance in self.instances.items():
                register_cache_gauges(self.sim.metrics, instance.cache,
                                      scheme=self.name, app=app, node=node_id)

    @property
    def stats(self) -> AccessStats:
        return self._stats

    def home_of(self, key: str) -> str:
        return self.ring.home(key)

    def _do_read(self, node_id: str, key: str, ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        instance = self.instances[node_id]
        home = self.home_of(key)

        if home == node_id:
            value, _version, cached = yield from instance.home_fetch(key)
            kind = OpKind.LOCAL_READ_HIT if cached else OpKind.READ_MISS
            self._stats.record(kind, self.sim.now - start)
            return value

        entry = instance.cache.get(key)
        if entry is not None and key in self.read_only_keys:
            # Annotated read-only: no version check needed, ever.
            self._stats.record(OpKind.LOCAL_READ_HIT, self.sim.now - start)
            return entry.value

        if entry is not None:
            # The protocol's defining step: fetch the version from the home
            # even though the data is cached locally.
            home_version = yield from instance.endpoint.call(
                f"{home}/faast-{self.app}", "check_version", key,
                size_bytes=len(key), timeout=DEFAULT_RPC_TIMEOUT_MS,
                trace=INHERIT,
            )
            self._stats.version_checks += 1
            if home_version == entry.version:
                self._stats.record(OpKind.LOCAL_READ_HIT, self.sim.now - start)
                return entry.value

        value, version, home_cached = yield from instance.endpoint.call(
            f"{home}/faast-{self.app}", "fetch", key,
            size_bytes=len(key), timeout=DEFAULT_RPC_TIMEOUT_MS,
            trace=INHERIT,
        )
        if value is not None:
            instance._insert(key, value, version)
        kind = OpKind.REMOTE_READ_HIT if home_cached else OpKind.READ_MISS
        self._stats.record(kind, self.sim.now - start)
        return value

    def _do_write(self, node_id: str, key: str, value: object, ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.sleep(self.cluster.config.latency.local_access)
        instance = self.instances[node_id]
        home = self.home_of(key)
        if home == node_id:
            yield from instance.home_write(key, value)
            kind = OpKind.LOCAL_WRITE_HIT
        else:
            version = yield from instance.endpoint.call(
                f"{home}/faast-{self.app}", "write", (key, value),
                size_bytes=sizeof(value), timeout=DEFAULT_RPC_TIMEOUT_MS,
                trace=INHERIT,
            )
            instance._insert(key, value, version)
            kind = OpKind.REMOTE_WRITE_HIT
        self._stats.record(kind, self.sim.now - start)
        return None
