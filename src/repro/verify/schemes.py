"""Scheme-dispatched invariant checking.

``check_coherence`` knows Concord's invariants; the zoo schemes carry
their own (version anchors, dirty-buffer accounting, session
guarantees, staleness bounds) as a ``verify_invariants(cluster)``
method.  This dispatcher gives fault scenarios and experiments one
entry point that does the right thing for whatever scheme is under
test — so "run the catalogue under a crash plan and verify each" is a
one-liner.

Dispatch is structural, not imported: a scheme that defines
``verify_invariants`` is asked directly; a Concord system (recognised
by its ``agents``/``controller`` shape) goes through the runtime
coherence checker; anything else (e.g. ``nocache``, which holds no
state to violate) passes vacuously.
"""

from __future__ import annotations

from typing import Optional

from repro.verify.runtime import check_coherence

__all__ = ["check_scheme_invariants"]


def check_scheme_invariants(scheme, cluster: Optional[object] = None,
                            strict_tracking: Optional[bool] = None) -> list:
    """All invariant violations for ``scheme`` at quiescence.

    Returns Concord's coherence violations, a zoo scheme's own
    ``verify_invariants`` result, or ``[]`` for stateless schemes.
    ``strict_tracking`` is forwarded to the Concord checker only.
    """
    verify = getattr(scheme, "verify_invariants", None)
    if verify is not None:
        return verify(cluster)
    if hasattr(scheme, "agents") and hasattr(scheme, "controller"):
        return check_coherence(scheme, cluster, strict_tracking)
    return []
