"""Causal-consistency and bounded-staleness invariants.

The runtime coherence checker (:mod:`repro.verify.runtime`) asks "does
every cache equal storage?" — the right question for Concord's
write-through E/S/I protocol, and the wrong one for the scheme zoo's
weaker families.  This module checks what *those* schemes promise:

- :func:`check_session_guarantees` verifies the classic session
  guarantees over an operation history recorded by the causal scheme:
  **read-your-writes** (a session never reads a key older than its own
  last write to it), **monotonic reads** (per-session per-key read
  versions never regress), and **writes-follow-reads** (every write's
  vector clock dominates the clocks of all values the session read
  before it) — all of which must hold *across client migration*, since
  the history spans nodes.

- :func:`check_bounded_staleness` verifies the TTL scheme's contract: a
  read may serve a superseded value, but never one that had been
  superseded for longer than the TTL before the read was served.

Both take plain data (histories, logs), so planted-violation tests can
fabricate inputs and prove the checkers fire; both are what
:func:`repro.verify.check_scheme_invariants` dispatches to for the zoo
schemes.

Vector clocks are duck-typed (anything with ``dominates``/``merge``)
so this module imports nothing from :mod:`repro.schemes` — the schemes
import *us*, and a cycle here would break registry population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = [
    "CausalOp",
    "check_bounded_staleness",
    "check_session_guarantees",
]


@dataclass(frozen=True)
class CausalOp:
    """One operation in a session-guarantee history.

    ``vc`` is the vector clock of the *value*: for a write, the clock
    the write was tagged with; for a read, the clock of the write whose
    value was observed (``None`` when unknown — e.g. a durable-storage
    fallback read, which carries a version but no clock; such reads
    still participate in the per-key checks).
    """

    op: str            # "r" or "w"
    t_ms: float
    session: str       # client identity (function name)
    node: str          # node the operation executed on
    key: str
    version: int       # storage version observed / produced
    vc: Optional[object] = None


class _SessionState:
    """Per-session tracking for one pass over the history."""

    __slots__ = ("written", "read", "seen_vc", "last_node")

    def __init__(self):
        self.written: dict = {}   # key -> max version this session wrote
        self.read: dict = {}      # key -> max version this session read
        self.seen_vc = None       # merge of vcs of values read so far
        self.last_node = None


def check_session_guarantees(history: Iterable[CausalOp]) -> list:
    """All session-guarantee violations in ``history``, in order.

    The history must be in execution order (the causal scheme appends
    at serve time, so simulated-time order).  Returns human-readable
    violation strings; an empty list means every session was served
    read-your-writes, monotonic reads, and writes-follow-reads —
    including operations that migrated between nodes mid-session.
    """
    violations: list = []
    sessions: dict = {}
    for op in history:
        state = sessions.get(op.session)
        if state is None:
            state = _SessionState()
            sessions[op.session] = state
        migrated = (state.last_node is not None
                    and state.last_node != op.node)
        where = (f"on {op.node}" + (" after migrating "
                                    f"from {state.last_node}"
                                    if migrated else ""))
        if op.op == "w":
            state.written[op.key] = max(
                state.written.get(op.key, 0), op.version)
            # Writes-follow-reads: the write's clock must dominate the
            # clock of every value this session has read.
            if (op.vc is not None and state.seen_vc is not None
                    and not op.vc.dominates(state.seen_vc)):
                violations.append(
                    f"writes-follow-reads: session {op.session!r} wrote "
                    f"{op.key!r} {where} with clock {op.vc!r} that does "
                    f"not dominate its read past {state.seen_vc!r}")
        elif op.op == "r":
            own = state.written.get(op.key, 0)
            if op.version < own:
                violations.append(
                    f"read-your-writes: session {op.session!r} read "
                    f"{op.key!r} v{op.version} {where} after writing "
                    f"v{own}")
            prev = state.read.get(op.key, 0)
            if op.version < prev:
                violations.append(
                    f"monotonic-reads: session {op.session!r} read "
                    f"{op.key!r} v{op.version} {where} after reading "
                    f"v{prev}")
            state.read[op.key] = max(prev, op.version)
            if op.vc is not None:
                state.seen_vc = (op.vc if state.seen_vc is None
                                 else state.seen_vc.merge(op.vc))
        else:
            violations.append(f"malformed history op {op.op!r} "
                              f"(session {op.session!r}, key {op.key!r})")
        state.last_node = op.node
    return violations


def check_bounded_staleness(reads: Iterable, writes: Iterable,
                            ttl_ms: float) -> list:
    """Bounded-staleness violations for a TTL scheme.

    ``reads`` holds ``(t_ms, node, key, version)`` per served read;
    ``writes`` holds ``(t_ms, key, version)`` per storage commit.  A
    read violates the bound when a strictly newer version of its key
    had already been durable for more than ``ttl_ms`` when the read was
    served: the freshness lease only permits serving values superseded
    *within* the last TTL window.
    """
    # key -> sorted (commit_ms, version) commits (append order is commit
    # order, but sort defensively: fabricated test logs may interleave).
    commits: dict = {}
    for t_ms, key, version in writes:
        commits.setdefault(key, []).append((t_ms, version))
    for log in commits.values():
        log.sort()
    violations: list = []
    for t_ms, node, key, version in reads:
        log = commits.get(key)
        if not log:
            continue
        deadline = t_ms - ttl_ms
        # Find the earliest commit that superseded the served version.
        for commit_ms, commit_version in log:
            if commit_version <= version:
                continue
            if commit_ms < deadline:
                violations.append(
                    f"bounded-staleness: {node} served {key!r} "
                    f"v{version} at t={t_ms:.3f} though v{commit_version}"
                    f" committed at t={commit_ms:.3f}, "
                    f"{t_ms - commit_ms:.3f}ms earlier (ttl {ttl_ms}ms)")
            break  # later commits of newer versions are even later
    return violations
