"""Explicit-state model checking of the Concord coherence protocol.

A Python stand-in for the paper's TLA+/TLC verification (Section III-H):
the protocol is abstracted to atomic transitions (the home serializes all
directory operations), and a breadth-first search explores every reachable
state of a small configuration, checking the paper's invariants:

- coherence states are correct (at most one Exclusive copy; Exclusive
  excludes all other valid copies);
- a read of a valid cache location returns the value last written
  (with write-through, every valid copy equals storage);
- the directory tracks every valid copy (when no recovery is pending);
- no deadlock: every non-quiescent state has an enabled action.

Modelled events, as in the paper: Local/Remote Read/Write Hit, Read/Write
Miss, DataEvict, NodeFail, RecoverOnFail, DomainChange.
"""

from repro.verify.causal import (
    CausalOp,
    check_bounded_staleness,
    check_session_guarantees,
)
from repro.verify.model import (
    CheckReport,
    ModelChecker,
    ModelConfig,
    ModelState,
    enabled_transitions,
)
from repro.verify.runtime import (
    CoherenceViolation,
    assert_coherent,
    check_coherence,
)
from repro.verify.schemes import check_scheme_invariants

__all__ = [
    "CausalOp",
    "CheckReport",
    "CoherenceViolation",
    "ModelChecker",
    "ModelConfig",
    "ModelState",
    "assert_coherent",
    "check_bounded_staleness",
    "check_coherence",
    "check_scheme_invariants",
    "check_session_guarantees",
    "enabled_transitions",
]
