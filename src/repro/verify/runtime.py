"""Runtime coherence invariants over a live (quiescent) ConcordSystem.

The model checker (:mod:`repro.verify.model`) explores an abstracted
protocol; this module checks the *implementation* — the actual caches,
directories and rings of a :class:`~repro.core.ConcordSystem` — against
the same invariants, after fault injection and recovery have settled:

- **No stale copies.**  With write-through, every valid (non-speculative)
  cached value equals the durable value in global storage.
- **No dead sharers.**  After recovery completes, no directory entry may
  point at a crashed or ejected node (survivors purge failed sharers,
  Section III-F).
- **Structural validity.**  Exclusive entries have exactly one sharer,
  Shared entries at least one.
- **Correct homing.**  Every directory entry lives at the ring home of
  its key, and each key has at most one directory entry domain-wide.

Sharded systems (``ConcordSystem(shards=N)``) get three extra checks:

- **Shard-table agreement.**  Every live agent's router must resolve
  the same leader chain per shard as the controller's — a disagreement
  means a re-homing epoch left agents routing to different homes.
- **No homeless shards.**  Every shard's replica chain is non-empty
  while members remain (leader election is a pure function of
  membership, so an empty chain is a failover bug, not a fault).
- **No untracked copies.**  Every cached non-speculative key must be
  registered at its shard leader's directory — after a shard moves
  homes, a copy the new leader does not know about could never be
  invalidated (a "stale copy surviving a shard move" in waiting).

Call :func:`check_coherence` when the simulation is quiescent (no
requests in flight — e.g. after a drain phase); in-flight operations
legitimately hold transient states these invariants would flag.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.events import VERIFY_VIOLATION

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.core import ConcordSystem


class CoherenceViolation(AssertionError):
    """Raised by :func:`assert_coherent` with all violations listed."""


def _live_agents(system: "ConcordSystem", cluster: "Cluster") -> dict:
    """node_id -> agent for agents that are up and serving."""
    live = {}
    for node_id, agent in system.agents.items():
        node = cluster.nodes.get(node_id)
        if node is not None and not node.alive:
            continue
        if not agent.alive or agent.ejected:
            continue
        live[node_id] = agent
    return live


def check_coherence(
    system: "ConcordSystem", cluster: Optional["Cluster"] = None,
    strict_tracking: Optional[bool] = None,
) -> list[str]:
    """All invariant violations in ``system``'s current state (quiescent).

    ``strict_tracking`` controls the untracked-copy check (every cached
    key registered at its home's directory).  ``None`` auto-enables it
    for sharded systems, where a copy unknown to a shard's new leader
    can never be invalidated.
    """
    cluster = cluster if cluster is not None else system.cluster
    storage = system.storage
    live = _live_agents(system, cluster)
    violations: list[str] = []
    obs = system.sim.obs
    sharded = getattr(system, "shard_manager", None) is not None
    if strict_tracking is None:
        strict_tracking = sharded

    def flag(key: str, node: str, message: str) -> None:
        violations.append(message)
        # A dump-trigger event: a recorder with a dump_path writes the
        # flight recording out the moment the checker finds a violation.
        if obs.active:
            obs.emit(VERIFY_VIOLATION, node=node, key=key, detail=message)

    # -- no stale cached copies (write-through: cache == storage) -------
    for node_id, agent in live.items():
        for key in agent.cache.keys():
            entry = agent.cache.peek(key)
            if entry is None or entry.speculative:
                continue
            record = storage.peek(key)
            if record is None:
                flag(key, node_id,
                     f"{node_id}: caches {key!r} but storage has no record")
            elif entry.value != record.value:
                flag(key, node_id,
                     f"{node_id}: stale copy of {key!r} "
                     f"(cached {entry.value!r} != stored {record.value!r})")

    # -- directory entries: structure, liveness of sharers, homing ------
    homes_of: dict[str, list[str]] = {}
    for node_id, agent in live.items():
        for entry in agent.directory.entries():
            homes_of.setdefault(entry.key, []).append(node_id)
            if not entry.is_valid():
                flag(entry.key, node_id,
                     f"{node_id}: directory entry for {entry.key!r} is "
                     f"structurally invalid ({entry.state}, "
                     f"{len(entry.sharers)} sharers)")
            for sharer in sorted(entry.sharers):
                if sharer not in live:
                    flag(entry.key, node_id,
                         f"{node_id}: directory entry for {entry.key!r} "
                         f"points at dead/ejected node {sharer!r}")
                elif sharer not in agent.ring.members:
                    flag(entry.key, node_id,
                         f"{node_id}: directory entry for {entry.key!r} "
                         f"lists {sharer!r}, not a ring member")
            if (agent.ring.members
                    and agent.ring.home(entry.key) != node_id):
                flag(entry.key, node_id,
                     f"{node_id}: directory entry for {entry.key!r} parked "
                     f"away from its home "
                     f"{agent.ring.home(entry.key)!r}")
    for key, holders in homes_of.items():
        if len(holders) > 1:
            flag(key, "",
                 f"duplicate directory entries for {key!r} at {holders}")

    # -- sharded topologies: table agreement and homeless shards --------
    if sharded:
        reference = system.controller.ring
        expected = reference.table()
        for shard, chain in enumerate(expected):
            if not chain and reference.members:
                flag("", "",
                     f"shard {shard} has no home (empty replica chain "
                     f"with {len(reference.members)} members)")
        for node_id, agent in live.items():
            router = agent.ring
            if not router.members:
                continue
            table = router.table()
            if table == expected:
                continue
            for shard, chain in enumerate(table):
                if shard < len(expected) and chain != expected[shard]:
                    flag("", node_id,
                         f"{node_id}: shard {shard} chain {chain} disagrees "
                         f"with controller chain {expected[shard]}")
            if len(table) != len(expected):
                flag("", node_id,
                     f"{node_id}: routes {len(table)} shards, controller "
                     f"has {len(expected)}")

    # -- no untracked copies (cached key unknown at its home) -----------
    if strict_tracking:
        for node_id, agent in live.items():
            ring = agent.ring
            if not ring.members:
                continue
            for key in agent.cache.keys():
                cached = agent.cache.peek(key)
                if cached is None or cached.speculative:
                    continue
                home = ring.home(key)
                home_agent = live.get(home)
                if home_agent is None:
                    continue  # dead home is flagged by the checks above
                entry = home_agent.directory.peek(key)
                where = (f"shard {ring.shard_of(key)} leader" if sharded
                         else "home")
                if entry is None:
                    flag(key, node_id,
                         f"{node_id}: caches {key!r} untracked at its "
                         f"{where} {home!r} (no directory entry)")
                elif node_id not in entry.sharers:
                    flag(key, node_id,
                         f"{node_id}: caches {key!r} but its {where} "
                         f"{home!r} does not list it as a sharer")

    return violations


def assert_coherent(
    system: "ConcordSystem", cluster: Optional["Cluster"] = None,
    strict_tracking: Optional[bool] = None,
) -> None:
    """Raise :class:`CoherenceViolation` if any invariant is violated."""
    violations = check_coherence(system, cluster, strict_tracking)
    if violations:
        raise CoherenceViolation(
            f"{len(violations)} coherence violation(s):\n  "
            + "\n  ".join(violations))
