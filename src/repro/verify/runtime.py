"""Runtime coherence invariants over a live (quiescent) ConcordSystem.

The model checker (:mod:`repro.verify.model`) explores an abstracted
protocol; this module checks the *implementation* — the actual caches,
directories and rings of a :class:`~repro.core.ConcordSystem` — against
the same invariants, after fault injection and recovery have settled:

- **No stale copies.**  With write-through, every valid (non-speculative)
  cached value equals the durable value in global storage.
- **No dead sharers.**  After recovery completes, no directory entry may
  point at a crashed or ejected node (survivors purge failed sharers,
  Section III-F).
- **Structural validity.**  Exclusive entries have exactly one sharer,
  Shared entries at least one.
- **Correct homing.**  Every directory entry lives at the ring home of
  its key, and each key has at most one directory entry domain-wide.

Call :func:`check_coherence` when the simulation is quiescent (no
requests in flight — e.g. after a drain phase); in-flight operations
legitimately hold transient states these invariants would flag.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.events import VERIFY_VIOLATION

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.core import ConcordSystem


class CoherenceViolation(AssertionError):
    """Raised by :func:`assert_coherent` with all violations listed."""


def _live_agents(system: "ConcordSystem", cluster: "Cluster") -> dict:
    """node_id -> agent for agents that are up and serving."""
    live = {}
    for node_id, agent in system.agents.items():
        node = cluster.nodes.get(node_id)
        if node is not None and not node.alive:
            continue
        if not agent.alive or agent.ejected:
            continue
        live[node_id] = agent
    return live


def check_coherence(
    system: "ConcordSystem", cluster: Optional["Cluster"] = None,
) -> list[str]:
    """All invariant violations in ``system``'s current state (quiescent)."""
    cluster = cluster if cluster is not None else system.cluster
    storage = system.storage
    live = _live_agents(system, cluster)
    violations: list[str] = []
    obs = system.sim.obs

    def flag(key: str, node: str, message: str) -> None:
        violations.append(message)
        # A dump-trigger event: a recorder with a dump_path writes the
        # flight recording out the moment the checker finds a violation.
        if obs.active:
            obs.emit(VERIFY_VIOLATION, node=node, key=key, detail=message)

    # -- no stale cached copies (write-through: cache == storage) -------
    for node_id, agent in live.items():
        for key in agent.cache.keys():
            entry = agent.cache.peek(key)
            if entry is None or entry.speculative:
                continue
            record = storage.peek(key)
            if record is None:
                flag(key, node_id,
                     f"{node_id}: caches {key!r} but storage has no record")
            elif entry.value != record.value:
                flag(key, node_id,
                     f"{node_id}: stale copy of {key!r} "
                     f"(cached {entry.value!r} != stored {record.value!r})")

    # -- directory entries: structure, liveness of sharers, homing ------
    homes_of: dict[str, list[str]] = {}
    for node_id, agent in live.items():
        for entry in agent.directory.entries():
            homes_of.setdefault(entry.key, []).append(node_id)
            if not entry.is_valid():
                flag(entry.key, node_id,
                     f"{node_id}: directory entry for {entry.key!r} is "
                     f"structurally invalid ({entry.state}, "
                     f"{len(entry.sharers)} sharers)")
            for sharer in sorted(entry.sharers):
                if sharer not in live:
                    flag(entry.key, node_id,
                         f"{node_id}: directory entry for {entry.key!r} "
                         f"points at dead/ejected node {sharer!r}")
                elif sharer not in agent.ring.members:
                    flag(entry.key, node_id,
                         f"{node_id}: directory entry for {entry.key!r} "
                         f"lists {sharer!r}, not a ring member")
            if (agent.ring.members
                    and agent.ring.home(entry.key) != node_id):
                flag(entry.key, node_id,
                     f"{node_id}: directory entry for {entry.key!r} parked "
                     f"away from its home "
                     f"{agent.ring.home(entry.key)!r}")
    for key, holders in homes_of.items():
        if len(holders) > 1:
            flag(key, "",
                 f"duplicate directory entries for {key!r} at {holders}")

    return violations


def assert_coherent(
    system: "ConcordSystem", cluster: Optional["Cluster"] = None,
) -> None:
    """Raise :class:`CoherenceViolation` if any invariant is violated."""
    violations = check_coherence(system, cluster)
    if violations:
        raise CoherenceViolation(
            f"{len(violations)} coherence violation(s):\n  "
            + "\n  ".join(violations))
