"""The abstract protocol model and its breadth-first checker.

State components (all immutable / hashable):

- ``active``: the coherence domain (nodes with a live cache instance);
- ``caches``: per node, ``None`` or ``(state, value)`` with state E or S;
- ``directory``: ``None`` or ``(state, sharers)`` — conceptually stored at
  ``home(active)``; lost when the home fails;
- ``storage``: the durable value (write-through keeps it current);
- ``pending_recovery``: the failed node whose keys are barriered, or None
  — between NodeFail and RecoverOnFail, reads of the key are blocked
  (the paper's read barrier), which is why directory completeness is only
  asserted when no recovery is pending;
- ``writes_left`` / ``fails_left`` / ``changes_left``: exploration bounds.

Transitions are atomic because the home cache agent serializes directory
operations per key (Section III-C2); the fault cases that are *not*
atomic in the implementation are modelled by the explicit
NodeFail/RecoverOnFail split with the read barrier in between.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

E = "E"
S = "S"


def ring_home(active: tuple) -> str:
    """Deterministic home assignment for the single modelled key."""
    # Any deterministic function of the member set works; use min() as
    # the stand-in for consistent hashing.
    return min(active)


@dataclass(frozen=True)
class ModelState:
    """One explored protocol state."""

    active: tuple                 # sorted tuple of active node ids
    caches: tuple                 # tuple of (node, state, value), sorted
    directory: Optional[tuple]    # (dir_state, sharers tuple) or None
    storage: int
    pending_recovery: Optional[str]
    writes_left: int
    fails_left: int
    changes_left: int

    # -- convenient views --------------------------------------------------
    def cache_of(self, node: str) -> Optional[tuple]:
        for entry_node, state, value in self.caches:
            if entry_node == node:
                return (state, value)
        return None

    def with_cache(self, node: str, entry: Optional[tuple]) -> tuple:
        """New caches tuple with ``node``'s entry replaced/removed."""
        rest = [c for c in self.caches if c[0] != node]
        if entry is not None:
            rest.append((node, entry[0], entry[1]))
        return tuple(sorted(rest))

    @property
    def home(self) -> str:
        return ring_home(self.active)

    def valid_holders(self) -> list:
        return [(n, s, v) for n, s, v in self.caches if n in self.active]


@dataclass(frozen=True)
class ModelConfig:
    """Exploration bounds."""

    nodes: tuple = ("n0", "n1", "n2")
    max_writes: int = 2
    max_fails: int = 1
    max_domain_changes: int = 1
    #: Allow graceful leaves/joins (DomainChange events).
    allow_domain_changes: bool = True
    #: Allow crash failures (NodeFail / RecoverOnFail events).
    allow_failures: bool = True


def initial_state(config: ModelConfig) -> ModelState:
    return ModelState(
        active=tuple(sorted(config.nodes)),
        caches=(),
        directory=None,
        storage=0,
        pending_recovery=None,
        writes_left=config.max_writes,
        fails_left=config.max_fails if config.allow_failures else 0,
        changes_left=config.max_domain_changes if config.allow_domain_changes else 0,
    )


# ---------------------------------------------------------------------------
# Transitions
# ---------------------------------------------------------------------------
def _read(state: ModelState, reader: str) -> Optional[ModelState]:
    """Read at ``reader`` (hit or miss, local or remote) — one atomic op."""
    cached = state.cache_of(reader)
    if cached is not None:
        return None  # local hit: no state change; value checked invariantly
    if state.pending_recovery is not None:
        return None  # the read barrier blocks the key during recovery
    directory = state.directory
    caches = state.caches
    if directory is None:
        # Read miss: fetch from storage, reader becomes exclusive owner.
        new_caches = state.with_cache(reader, (E, state.storage))
        return _replace(state, caches=new_caches, directory=(E, (reader,)))
    dir_state, sharers = directory
    if dir_state == E:
        owner = sharers[0]
        owner_entry = state.cache_of(owner)
        if owner != reader and owner_entry is not None:
            # Fetch from owner; both downgrade to Shared.
            caches = state.with_cache(owner, (S, owner_entry[1]))
            interim = _replace(state, caches=caches)
            caches = interim.with_cache(reader, (S, owner_entry[1]))
            return _replace(
                state, caches=caches,
                directory=(S, tuple(sorted({owner, reader}))),
            )
        # Owner evicted silently (or owner is the reader itself):
        # storage is current; reader becomes the exclusive owner.
        caches = state.with_cache(reader, (E, state.storage))
        return _replace(state, caches=caches, directory=(E, (reader,)))
    # Shared: serve from storage/home copy; add reader as sharer.
    caches = state.with_cache(reader, (S, state.storage))
    return _replace(
        state, caches=caches,
        directory=(S, tuple(sorted(set(sharers) | {reader}))),
    )


def _write(state: ModelState, writer: str) -> Optional[ModelState]:
    """Write at ``writer`` — invalidations + storage update, atomically."""
    if state.writes_left == 0:
        return None
    new_value = state.storage + 1
    cached = state.cache_of(writer)
    if cached is not None and cached[0] == E:
        # E-state write: straight to storage, bypassing the home.
        caches = state.with_cache(writer, (E, new_value))
        return _replace(
            state, caches=caches, storage=new_value,
            writes_left=state.writes_left - 1,
        )
    if state.pending_recovery is not None:
        return None  # barriered until recovery completes
    # Through the home: invalidate every other copy, then own exclusively.
    caches = ((writer, E, new_value),)
    return _replace(
        state, caches=caches, storage=new_value,
        directory=(E, (writer,)), writes_left=state.writes_left - 1,
    )


def _evict(state: ModelState, node: str) -> Optional[ModelState]:
    """Silent eviction: the home is not informed."""
    if state.cache_of(node) is None:
        return None
    return _replace(state, caches=state.with_cache(node, None))


def _fail(state: ModelState, node: str) -> Optional[ModelState]:
    if state.fails_left == 0 or state.pending_recovery is not None:
        return None
    if node not in state.active or len(state.active) < 2:
        return None
    active = tuple(sorted(set(state.active) - {node}))
    caches = tuple(c for c in state.caches if c[0] != node)
    directory = state.directory
    pending = None
    if state.home == node:
        # The directory was homed at the failed node: it is lost, and the
        # key is barriered until recovery completes.
        directory = None
        pending = node
    else:
        # Prune the failed node from the sharer set.
        if directory is not None:
            dir_state, sharers = directory
            remaining = tuple(sorted(set(sharers) - {node}))
            directory = (dir_state, remaining) if remaining else None
    return _replace(
        state, active=active, caches=caches, directory=directory,
        pending_recovery=pending, fails_left=state.fails_left - 1,
    )


def _recover(state: ModelState) -> Optional[ModelState]:
    """RecoverOnFail: survivors evict copies homed at the failed node."""
    if state.pending_recovery is None:
        return None
    # Every cached copy of the key (homed at the failed node) is evicted.
    return _replace(state, caches=(), pending_recovery=None)


def _leave(state: ModelState, node: str) -> Optional[ModelState]:
    """Graceful DomainChange: two-phase leave with directory hand-off."""
    if state.changes_left == 0 or state.pending_recovery is not None:
        return None
    if node not in state.active or len(state.active) < 2:
        return None
    active = tuple(sorted(set(state.active) - {node}))
    caches = tuple(c for c in state.caches if c[0] != node)
    directory = state.directory
    if directory is not None:
        dir_state, sharers = directory
        remaining = tuple(sorted(set(sharers) - {node}))
        directory = (dir_state, remaining) if remaining else None
        # Hand-off: the entry (if any) now lives at the new home — the
        # model keeps a single logical directory, so only sharer pruning
        # is visible.
    return _replace(
        state, active=active, caches=caches, directory=directory,
        changes_left=state.changes_left - 1,
    )


def _join(state: ModelState, node: str, config: ModelConfig) -> Optional[ModelState]:
    """Graceful DomainChange: a cache instance (re)enters the domain."""
    if state.changes_left == 0 or state.pending_recovery is not None:
        return None
    if node in state.active or node not in config.nodes:
        return None
    active = tuple(sorted(set(state.active) | {node}))
    # If the home moves to the joining node, the directory entry is
    # transferred (two-phase join); logically unchanged in the model.
    return _replace(
        state, active=active, changes_left=state.changes_left - 1,
    )


def _replace(state: ModelState, **kwargs) -> ModelState:
    from dataclasses import replace

    return replace(state, **kwargs)


def enabled_transitions(
    state: ModelState, config: ModelConfig
) -> list:
    """All (event_name, successor) pairs from ``state``."""
    successors = []

    def add(name, new_state):
        if new_state is not None:
            successors.append((name, new_state))

    for node in state.active:
        add(f"Read({node})", _read(state, node))
        add(f"Write({node})", _write(state, node))
        add(f"DataEvict({node})", _evict(state, node))
        add(f"NodeFail({node})", _fail(state, node))
        add(f"Leave({node})", _leave(state, node))
    for node in config.nodes:
        add(f"Join({node})", _join(state, node, config))
    add("RecoverOnFail", _recover(state))
    return successors


# ---------------------------------------------------------------------------
# Invariants
# ---------------------------------------------------------------------------
def invariant_violations(state: ModelState) -> list:
    """The safety conditions of Section III-H, checked on one state."""
    violations = []
    holders = state.valid_holders()
    exclusive = [h for h in holders if h[1] == E]
    if len(exclusive) > 1:
        violations.append(f"two exclusive copies: {holders}")
    if exclusive and len(holders) > 1:
        violations.append(f"E coexists with other copies: {holders}")
    for node, _cstate, value in holders:
        if value != state.storage:
            violations.append(
                f"stale copy at {node}: {value} != storage {state.storage}")
    if state.pending_recovery is None and holders:
        if state.directory is None:
            violations.append(f"untracked copies (no directory): {holders}")
        else:
            _dir_state, sharers = state.directory
            for node, _cstate, _value in holders:
                if node not in sharers:
                    violations.append(f"holder {node} missing from directory")
    return violations


# ---------------------------------------------------------------------------
# Checker
# ---------------------------------------------------------------------------
@dataclass
class CheckReport:
    """Outcome of exhaustive exploration."""

    states_explored: int = 0
    transitions: int = 0
    violations: list = field(default_factory=list)   # (state, messages)
    deadlocks: list = field(default_factory=list)    # states w/o actions

    @property
    def ok(self) -> bool:
        return not self.violations and not self.deadlocks


class ModelChecker:
    """Breadth-first exhaustive exploration with invariant checking."""

    def __init__(self, config: Optional[ModelConfig] = None):
        self.config = config or ModelConfig()

    def check(self, max_states: int = 500_000) -> CheckReport:
        report = CheckReport()
        start = initial_state(self.config)
        seen = {start}
        queue = deque([start])
        while queue:
            state = queue.popleft()
            report.states_explored += 1
            if report.states_explored > max_states:
                raise RuntimeError("state-space bound exceeded")
            messages = invariant_violations(state)
            if messages:
                report.violations.append((state, messages))
            successors = enabled_transitions(state, self.config)
            if not successors:
                # Quiescence requires an active domain where reads are
                # possible; anything else is a deadlock.
                if not state.active or state.pending_recovery is not None:
                    report.deadlocks.append(state)
                # A fully-explored quiescent state (all bounds exhausted,
                # everything cached) is fine: reads-as-hits remain enabled
                # in the real system but are modelled as no-ops here.
            for _name, successor in successors:
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
            report.transitions += len(successors)
        return report
