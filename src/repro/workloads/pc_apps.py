"""Producer-consumer applications for the placement evaluation (Fig. 16).

The Table-II applications "do not have frequent producer-consumer
patterns", so the paper evaluates communication-aware placement on six
applications from FunctionBench/FaaSFlow-style suites.  Each app here is
a chain whose stages pass sizeable intermediate blobs through storage —
exactly the pattern where co-locating stages converts remote hand-offs
into local cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import KB
from repro.faas.app import AppSpec, FunctionSpec
from repro.storage import DataItem


@dataclass(frozen=True)
class PcAppProfile:
    """A producer-consumer pipeline application."""

    name: str
    stages: int
    #: Size of each hand-off blob between stages.
    handoff_bytes: int
    #: Compute per stage (short apps benefit most, per the paper).
    compute_ms: float


PC_PROFILES: dict[str, PcAppProfile] = {
    profile.name: profile
    for profile in (
        PcAppProfile("IoTSensor", stages=3, handoff_bytes=64 * KB, compute_ms=1.0),
        PcAppProfile("MLSentiment", stages=4, handoff_bytes=256 * KB, compute_ms=6.0),
        PcAppProfile("VideoProcessing", stages=4, handoff_bytes=4096 * KB, compute_ms=25.0),
        PcAppProfile("MapReduce", stages=5, handoff_bytes=1024 * KB, compute_ms=8.0),
        PcAppProfile("EventStreaming", stages=3, handoff_bytes=128 * KB, compute_ms=1.5),
        PcAppProfile("IllegalRecognizer", stages=4, handoff_bytes=2048 * KB, compute_ms=12.0),
    )
}


def pc_handoff_key(app: str, request: int, stage: int) -> str:
    return f"{app}:req{request}:h{stage}"


def build_pc_app(profile: PcAppProfile) -> AppSpec:
    """A pipeline whose stages communicate through storage hand-offs."""
    spec = AppSpec(name=profile.name)
    for stage in range(profile.stages):
        spec.add_function(FunctionSpec(
            name=f"{profile.name}-s{stage}",
            handler=_make_stage_handler(profile, stage),
        ))
    return spec


def _make_stage_handler(profile: PcAppProfile, stage: int):
    app = profile.name
    last = profile.stages - 1

    def handler(ctx):
        request = int(ctx.inputs.get("request", 0))
        if stage > 0:
            # Consume the previous stage's hand-off blob; when the stages
            # are co-located this is a local hit instead of shipping the
            # whole blob over the network.
            yield from ctx.read(pc_handoff_key(app, request, stage - 1))
        yield from ctx.compute(profile.compute_ms)
        if stage < last:
            yield from ctx.write(
                pc_handoff_key(app, request, stage),
                DataItem((app, request, stage), profile.handoff_bytes),
            )
        return request

    handler.__name__ = f"{app}_s{stage}"
    return handler
