"""Sampling distributions for workload generation."""

from __future__ import annotations

import bisect
import hashlib
import random
from typing import Sequence

from repro.config import KB


class ZipfSampler:
    """Zipf-distributed integers in ``[0, n)`` via an exact inverse CDF.

    Rank ``r`` has probability proportional to ``1 / (r + 1) ** alpha``.
    Higher ``alpha`` means more skew (hotter hot keys); ``alpha == 0`` is
    uniform.
    """

    def __init__(self, n: int, alpha: float = 1.0):
        if n < 1:
            raise ValueError("n must be >= 1")
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.n = n
        self.alpha = alpha
        weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
        total = sum(weights)
        self._cdf = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cdf, rng.random())

    def probability(self, rank: int) -> float:
        """Exact probability mass of ``rank``."""
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - previous


class SizeSampler:
    """Deterministic per-key item sizes from a weighted bucket mix.

    Sizes are a *property of the key* (the same blob always has the same
    size), so the sampler hashes the key rather than drawing randomly.
    The default mix reproduces the paper's statistic that 80 % of items
    are no larger than 12 KB.
    """

    #: (size_bytes, weight) — cumulative 80 % at <= 12 KB.
    DEFAULT_BUCKETS: Sequence = (
        (512, 0.15),
        (1 * KB, 0.20),
        (2 * KB, 0.15),
        (4 * KB, 0.15),
        (8 * KB, 0.10),
        (12 * KB, 0.05),
        (32 * KB, 0.08),
        (64 * KB, 0.07),
        (256 * KB, 0.05),
    )

    def __init__(self, buckets: Sequence = DEFAULT_BUCKETS, scale: float = 1.0):
        total = sum(weight for _size, weight in buckets)
        self._cdf = []
        acc = 0.0
        for size, weight in buckets:
            acc += weight / total
            self._cdf.append((acc, int(size * scale)))
        #: key -> size memo: sizes are a pure function of the key (md5),
        #: so caching can never change a result, only skip the hash.
        self._memo: dict = {}

    def size_of(self, key: str) -> int:
        size = self._memo.get(key)
        if size is None:
            point = int.from_bytes(
                hashlib.md5(key.encode()).digest()[:4], "big") / 2 ** 32
            size = self._cdf[-1][1]
            for threshold, bucket_size in self._cdf:
                if point <= threshold:
                    size = bucket_size
                    break
            self._memo[key] = size
        return size


#: key -> md5 point memo for is_read_only (pure function of the key).
_RO_POINTS: dict = {}


def is_read_only(key: str, fraction: float = 0.05) -> bool:
    """Deterministically mark ~``fraction`` of keys as read-only objects.

    The paper reports 5 % of objects in the Azure traces are read-only.
    """
    point = _RO_POINTS.get(key)
    if point is None:
        point = int.from_bytes(
            hashlib.md5(f"ro:{key}".encode()).digest()[:4], "big") / 2 ** 32
        _RO_POINTS[key] = point
    return point < fraction
