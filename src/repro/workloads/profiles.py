"""The seven evaluation applications (paper Table II), parameterized.

Each profile describes an application's storage-access pattern; the
builder turns it into an :class:`~repro.faas.app.AppSpec` whose function
handlers generate that pattern:

- a request targets an *entity* (hotel, train, user feed ...) drawn from
  a Zipf distribution — this is the input Concord's coherence-aware
  scheduling hashes on;
- every workflow step reads the previous step's hand-off blob from
  storage (functions must communicate through storage, Section I);
- steps read entity-linked items plus popular app-global items, and
  write back a subset (overall 80 % reads / 20 % writes with 5 %
  read-only objects, the Azure distribution the paper uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import KB
from repro.faas.app import AppSpec, FunctionSpec
from repro.storage import DataItem
from repro.workloads.distributions import SizeSampler, ZipfSampler, is_read_only


@dataclass(frozen=True)
class AppProfile:
    """Parameterization of one benchmark application."""

    name: str
    #: Workflow length (functions per request).
    functions: int
    #: Entity-linked reads per function.
    reads_per_fn: int
    #: Entity-linked writes per function (on top of hand-off writes).
    writes_per_fn: int
    #: Compute per function, milliseconds.
    compute_ms: float
    #: Number of entities (Zipf keyspace).
    entities: int
    #: Zipf skew of entity popularity.
    zipf_alpha: float
    #: Item-size scale relative to the default small-object mix.
    size_scale: float = 1.0
    #: Items attached to each entity.
    items_per_entity: int = 4
    #: Fraction of reads that target app-global (cross-entity) items.
    global_read_fraction: float = 0.25
    #: Number of app-global items.
    global_items: int = 64
    #: Probability that each potential write actually happens (tunes the
    #: overall mix to the paper's ~80 % reads / 20 % writes, counting the
    #: mandatory hand-off writes between workflow stages).
    write_prob: float = 0.35
    #: Fraction of writes that target shared app-global items (drives the
    #: cross-node sharing that makes invalidations happen, Figure 9).
    global_write_fraction: float = 0.1


# Profiles calibrated so that, with the paper's latency constants, the
# no-cache storage share of response time spans ~35-93% (Figure 1) and
# read-heavy small-item apps (TrainT, SocNet, HotelBook) benefit most
# from Concord.  Media apps (ImgProc, VidProc) move larger blobs and
# spend more time computing.
ALL_PROFILES: dict[str, AppProfile] = {
    profile.name: profile
    for profile in (
        AppProfile("TrainT", functions=3, reads_per_fn=6, writes_per_fn=1,
                   compute_ms=8.0, entities=200, zipf_alpha=1.1),
        AppProfile("eShop", functions=4, reads_per_fn=5, writes_per_fn=1,
                   compute_ms=30.0, entities=300, zipf_alpha=1.0),
        AppProfile("ImgProc", functions=3, reads_per_fn=3, writes_per_fn=1,
                   compute_ms=120.0, entities=400, zipf_alpha=0.9,
                   size_scale=8.0),
        AppProfile("VidProc", functions=4, reads_per_fn=2, writes_per_fn=1,
                   compute_ms=250.0, entities=300, zipf_alpha=0.9,
                   size_scale=16.0),
        AppProfile("HotelBook", functions=3, reads_per_fn=6, writes_per_fn=1,
                   compute_ms=10.0, entities=150, zipf_alpha=1.2),
        AppProfile("MediaServ", functions=4, reads_per_fn=5, writes_per_fn=1,
                   compute_ms=25.0, entities=250, zipf_alpha=1.1),
        AppProfile("SocNet", functions=5, reads_per_fn=7, writes_per_fn=1,
                   compute_ms=6.0, entities=100, zipf_alpha=1.3),
    )
}


def entity_key(app: str, entity: int, item: int) -> str:
    return f"{app}:e{entity}:i{item}"


def handoff_key(app: str, entity: int, stage: int) -> str:
    return f"{app}:e{entity}:stage{stage}"


def global_key(app: str, index: int) -> str:
    return f"{app}:g{index}"


def _make_handler(profile: AppProfile, stage: int, sizes: SizeSampler):
    """Build the handler generator-function for workflow step ``stage``.

    All key strings, read-only flags and item sizes are pure functions of
    the profile, so they are precompiled into lookup tables here instead
    of being re-derived (f-strings + md5 hashes) on every invocation.
    The RNG draw sequence inside the handler is exactly the one the
    non-tabled version made — same calls, same order — so workloads are
    byte-identical.
    """
    app = profile.name
    last_stage = profile.functions - 1
    per_op_compute = profile.compute_ms / max(1, profile.reads_per_fn + 2)
    tail_compute = 2 * per_op_compute
    reads_per_fn = profile.reads_per_fn
    writes_per_fn = profile.writes_per_fn
    global_read_fraction = profile.global_read_fraction
    global_write_fraction = profile.global_write_fraction
    write_prob = profile.write_prob
    items_per_entity = profile.items_per_entity
    stream_name = f"wl:{app}"
    zipf_globals = _globals_sampler(profile)

    # (key, read_only, size) per entity item / app-global item, plus the
    # hand-off keys and sizes this stage touches.
    entity_items = [
        [(key, is_read_only(key), sizes.size_of(key))
         for item in range(items_per_entity)
         for key in (entity_key(app, entity, item),)]
        for entity in range(profile.entities)
    ]
    global_items = [
        (key, is_read_only(key), sizes.size_of(key))
        for index in range(profile.global_items)
        for key in (global_key(app, index),)
    ]
    handoff_in = ([handoff_key(app, entity, stage - 1)
                   for entity in range(profile.entities)]
                  if stage > 0 else None)
    handoff_out = ([(key, sizes.size_of(key))
                    for entity in range(profile.entities)
                    for key in (handoff_key(app, entity, stage),)]
                   if stage < last_stage else None)

    def _fill_rows(entity: int) -> None:
        # Out-of-profile entity id (callers may inject arbitrary inputs):
        # extend every table on demand, exactly as they were built above.
        if entity < 0:
            raise ValueError(f"negative entity id {entity} for app {app!r}")
        while len(entity_items) <= entity:
            missing = len(entity_items)
            entity_items.append(
                [(key, is_read_only(key), sizes.size_of(key))
                 for item in range(items_per_entity)
                 for key in (entity_key(app, missing, item),)])
            if handoff_in is not None:
                handoff_in.append(handoff_key(app, missing, stage - 1))
            if handoff_out is not None:
                key = handoff_key(app, missing, stage)
                handoff_out.append((key, sizes.size_of(key)))

    def handler(ctx):
        rng = ctx.sim.rng.stream(stream_name)
        rng_random = rng.random
        entity = int(ctx.inputs.get("entity", 0))
        if not 0 <= entity < len(entity_items):
            _fill_rows(entity)
        my_items = entity_items[entity]

        if handoff_in is not None:
            yield from ctx.read(handoff_in[entity])
        for _ in range(reads_per_fn):
            yield from ctx.compute(per_op_compute)
            if rng_random() < global_read_fraction:
                key = global_items[zipf_globals.sample(rng)][0]
            else:
                key = my_items[rng.randrange(items_per_entity)][0]
            yield from ctx.read(key)
        for _ in range(writes_per_fn):
            if rng_random() >= write_prob:
                continue
            if rng_random() < global_write_fraction:
                key, read_only, size = global_items[zipf_globals.sample(rng)]
            else:
                key, read_only, size = my_items[rng.randrange(items_per_entity)]
            if read_only:
                # 5 % of objects are read-only; read instead of writing.
                yield from ctx.read(key)
            else:
                yield from ctx.write(
                    key, DataItem((key, ctx.invocation_id), size))
        if handoff_out is not None:
            key, size = handoff_out[entity]
            yield from ctx.write(key, DataItem((key, ctx.invocation_id), size))
        yield from ctx.compute(tail_compute)
        return entity

    handler.__name__ = f"{app}_f{stage}"
    return handler


_GLOBAL_SAMPLERS: dict[str, ZipfSampler] = {}


def _globals_sampler(profile: AppProfile) -> ZipfSampler:
    sampler = _GLOBAL_SAMPLERS.get(profile.name)
    if sampler is None:
        sampler = ZipfSampler(profile.global_items, alpha=1.0)
        _GLOBAL_SAMPLERS[profile.name] = sampler
    return sampler


def build_app(profile: AppProfile) -> AppSpec:
    """Turn a profile into a deployable application."""
    sizes = SizeSampler(scale=profile.size_scale)
    spec = AppSpec(name=profile.name)
    for stage in range(profile.functions):
        spec.add_function(FunctionSpec(
            name=f"{profile.name}-f{stage}",
            handler=_make_handler(profile, stage, sizes),
        ))
    return spec


def working_set(profile: AppProfile) -> dict:
    """The app's initial key -> DataItem working set."""
    sizes = SizeSampler(scale=profile.size_scale)
    items = {}
    for entity in range(profile.entities):
        for item in range(profile.items_per_entity):
            key = entity_key(profile.name, entity, item)
            items[key] = DataItem((key, 0), sizes.size_of(key))
    for index in range(profile.global_items):
        key = global_key(profile.name, index)
        items[key] = DataItem((key, 0), sizes.size_of(key))
    return items


def preload_storage(storage, profile: AppProfile) -> int:
    """Populate global storage with the app's working set; returns count."""
    items = working_set(profile)
    storage.preload(items)
    return len(items)


def entity_inputs_factory(profile: AppProfile, sim, stream: Optional[str] = None):
    """Per-request inputs: a Zipf-popular entity id."""
    sampler = ZipfSampler(profile.entities, alpha=profile.zipf_alpha)
    rng = sim.rng.stream(stream or f"entities:{profile.name}")

    def factory(_index: int) -> dict:
        return {"entity": sampler.sample(rng)}

    return factory
