"""Benchmark application models and workload generators.

The seven evaluation applications (Table II) are modelled by their storage
access patterns: workflow length, reads/writes per function, item sizes,
entity popularity (Zipf) and per-function compute.  The distributions
follow the paper's stated statistics: 80 % reads / 20 % writes, 5 %
read-only objects, 80 % of items no larger than 12 KB, Poisson arrivals.
"""

from repro.workloads.distributions import SizeSampler, ZipfSampler
from repro.workloads.profiles import (
    ALL_PROFILES,
    AppProfile,
    build_app,
    entity_inputs_factory,
)

__all__ = [
    "ALL_PROFILES",
    "AppProfile",
    "SizeSampler",
    "ZipfSampler",
    "build_app",
    "entity_inputs_factory",
]
