"""Apta in software: memory-node directory, lazy invalidations,
coherence-aware (stale-avoiding) scheduling.

Data is homed on *memory nodes* (hash of the key).  Compute nodes cache
replicas.  A write updates the memory node (and, in the ``Az`` variant,
also global storage) and **completes immediately**; invalidations to the
sharers happen lazily afterwards.  Until every invalidation is
acknowledged, the sharer compute nodes are *stale* for the application,
and Apta's scheduler refuses to place invocations there — at the price of
querying all memory nodes on every scheduling decision (the 2.8x
scheduler-overhead the paper measures).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.caching.base import (
    CacheEntry,
    LruCache,
    StorageAPI,
    VALID,
    register_cache_gauges,
    register_scheme_metrics,
)
from repro.config import MB
from repro.core.hashring import ConsistentHashRing
from repro.faas.scheduler import LocalityScheduler, Scheduler
from repro.metrics import AccessStats, OpKind
from repro.net.rpc import DEFAULT_RPC_TIMEOUT_MS, Endpoint, Reply
from repro.net.sizes import sizeof

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.storage import GlobalStorage


def make_memory_tier(cluster: "Cluster", count: int) -> list:
    """Allocate ``count`` memory-node identifiers on the fabric."""
    return [f"mem{i}" for i in range(count)]


class _MemoryNode:
    """One disaggregated memory node: data, directory, lazy invalidation."""

    def __init__(self, system: "AptaSystem", mem_id: str):
        self.system = system
        self.sim = system.sim
        self.mem_id = mem_id
        #: key -> value held in disaggregated memory.
        self.data: dict[str, object] = {}
        #: key -> set of compute nodes caching it.
        self.sharers: dict[str, set] = {}
        #: compute node -> number of outstanding lazy invalidations.
        self.stale_counts: dict[str, int] = {}
        self.endpoint = Endpoint(
            system.cluster.network, mem_id, f"apta-{system.app}",
            service_time_ms=system.cluster.config.latency.agent_service_ms,
        )
        self.endpoint.register_handler("read", self._handle_read)
        self.endpoint.register_handler("write", self._handle_write)
        self.endpoint.register_handler("stale_query", self._handle_stale_query)

    def stale_nodes(self) -> set:
        return {node for node, count in self.stale_counts.items() if count > 0}

    # -- handlers ---------------------------------------------------------
    def _handle_read(self, endpoint, src, args):
        key, requester = args
        if key not in self.data and self.system.backing is not None:
            value, _version = yield from self.system.backing.read(key)
            if value is not None:
                self.data[key] = value
        value = self.data.get(key)
        if value is not None:
            self.sharers.setdefault(key, set()).add(requester)
        return Reply(value, size_bytes=sizeof(value))

    def _handle_write(self, endpoint, src, args):
        key, value, writer = args
        if self.system.backing is not None:
            # Az variant: the update must also reach global storage —
            # durably, *before* the memory tier serves it.  Installing
            # into ``data`` first would leave an interrupted handler
            # (node crash at the storage yield) advertising a value the
            # backing store never accepted.
            yield from self.system.backing.write(key, value, writer=writer)
        self.data[key] = value
        victims = self.sharers.get(key, set()) - {writer}
        self.sharers[key] = {writer}
        # Lazy invalidation: mark victims stale and reply immediately.
        for victim in sorted(victims):
            self.stale_counts[victim] = self.stale_counts.get(victim, 0) + 1
            self.sim.spawn(
                self._lazy_invalidate(key, victim),
                name=f"apta-inv:{key}:{victim}", daemon=True,
            )
        return Reply(True, size_bytes=1)

    def _lazy_invalidate(self, key: str, victim: str):
        try:
            # Invalidations are batched off the critical path: the memory
            # node flushes them periodically rather than per write.  This
            # is what makes Apta's stale windows long enough that, in the
            # paper, only 8.9 of 15 compute nodes are schedulable at a
            # time.
            yield self.sim.timeout(self.system.lazy_batch_ms)
            yield from self.endpoint.call(
                f"{victim}/apta-cache-{self.system.app}", "invalidate", key,
                size_bytes=len(key), timeout=5000.0,
            )
        finally:
            self.stale_counts[victim] = max(0, self.stale_counts.get(victim, 1) - 1)

    def _handle_stale_query(self, endpoint, src, args):
        return Reply(tuple(sorted(self.stale_nodes())), size_bytes=16)
        yield  # pragma: no cover - generator marker


class _ComputeCache:
    """Per-compute-node cache replica of one application's data."""

    def __init__(self, system: "AptaSystem", node_id: str):
        self.system = system
        self.node_id = node_id
        self.cache = LruCache(system.capacity_per_node, name=f"apta:{node_id}")
        self.endpoint = Endpoint(
            system.cluster.network, node_id, f"apta-cache-{system.app}",
            service_time_ms=system.cluster.config.latency.agent_service_ms,
            cpu=system.cluster.nodes[node_id].cores,
        )
        self.endpoint.register_handler("invalidate", self._handle_invalidate)

    def _handle_invalidate(self, endpoint, src, key):
        self.cache.remove(key)
        return Reply("ack", size_bytes=1)
        yield  # pragma: no cover - generator marker


class AptaSystem(StorageAPI):
    """The Apta caching layer over compute + memory nodes."""

    name = "apta"
    #: Memory-tier writes are eager but invalidations flush lazily in
    #: batches, so compute caches may serve stale data for one batch.
    consistency = "eventual"

    def __init__(
        self,
        cluster: "Cluster",
        memory_nodes: list,
        app: str = "app",
        backing: Optional["GlobalStorage"] = None,
        capacity_per_node: int = 64 * MB,
        lazy_batch_ms: float = 50.0,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.app = app
        #: Global storage behind the memory tier (Az variant); None = Mem.
        self.backing = backing
        self.capacity_per_node = capacity_per_node
        #: Period of the batched lazy-invalidation flush.
        self.lazy_batch_ms = lazy_batch_ms
        self.ring = ConsistentHashRing(memory_nodes)
        self.memory = {mid: _MemoryNode(self, mid) for mid in memory_nodes}
        self.caches = {
            nid: _ComputeCache(self, nid) for nid in cluster.node_ids
        }
        self._stats = AccessStats()
        register_scheme_metrics(self.sim.metrics, self, app)
        if self.sim.metrics.active:
            for node_id, compute_cache in self.caches.items():
                register_cache_gauges(self.sim.metrics, compute_cache.cache,
                                      scheme=self.name, app=app, node=node_id)

    @property
    def stats(self) -> AccessStats:
        return self._stats

    def home_of(self, key: str) -> str:
        return self.ring.home(key)

    def preload(self, items: dict) -> None:
        """Populate the memory tier directly (Mem-variant working set)."""
        for key, value in items.items():
            self.memory[self.home_of(key)].data[key] = value

    def stale_nodes(self) -> set:
        """Union of nodes currently stale at any memory node."""
        stale = set()
        for memory_node in self.memory.values():
            stale |= memory_node.stale_nodes()
        return stale

    # -- StorageAPI -------------------------------------------------------------
    def _do_read(self, node_id: str, key: str, ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.timeout(self.cluster.config.latency.local_access)
        compute = self.caches[node_id]
        entry = compute.cache.get(key)
        if entry is not None:
            self._stats.record(OpKind.LOCAL_READ_HIT, self.sim.now - start)
            return entry.value
        home = self.home_of(key)
        value = yield from compute.endpoint.call(
            f"{home}/apta-{self.app}", "read", (key, node_id),
            size_bytes=len(key) + 8, timeout=DEFAULT_RPC_TIMEOUT_MS,
        )
        # Re-read the registry: install into the node's *current* compute
        # instance, not a handle snapshotted before the RPC suspension.
        compute = self.caches[node_id]
        if value is not None:
            size = sizeof(value)
            if size <= compute.cache.capacity_bytes:
                compute.cache.put(CacheEntry(
                    key=key, value=value, state=VALID, size_bytes=size))
        # Served by the memory tier either way; classify as remote hit.
        self._stats.record(OpKind.REMOTE_READ_HIT, self.sim.now - start)
        return value

    def _do_write(self, node_id: str, key: str, value: object,
              ctx: Optional[object] = None):
        start = self.sim.now
        yield self.sim.timeout(self.cluster.config.latency.local_access)
        compute = self.caches[node_id]
        home = self.home_of(key)
        yield from compute.endpoint.call(
            f"{home}/apta-{self.app}", "write", (key, value, node_id),
            size_bytes=sizeof(value) + len(key), timeout=DEFAULT_RPC_TIMEOUT_MS,
        )
        # Re-read the registry: install into the node's *current* compute
        # instance, not a handle snapshotted before the RPC suspension.
        compute = self.caches[node_id]
        size = sizeof(value)
        if size <= compute.cache.capacity_bytes:
            compute.cache.put(CacheEntry(
                key=key, value=value, state=VALID, size_bytes=size))
        self._stats.record(OpKind.REMOTE_WRITE_HIT, self.sim.now - start)
        return None


class AptaScheduler(Scheduler):
    """Stale-avoiding scheduler with per-invocation memory-node queries."""

    name = "apta"

    _instances = 0

    def __init__(self, systems: dict):
        #: app name -> AptaSystem (to consult stale sets).
        self.systems = systems
        self._fallback = LocalityScheduler()
        self.scheduling_queries = 0
        self.unavailable_samples: list = []
        self._endpoint = None

    def _scheduler_endpoint(self, network) -> Endpoint:
        if self._endpoint is None:
            AptaScheduler._instances += 1
            self._endpoint = Endpoint(
                network, "lb", f"apta-sched-{AptaScheduler._instances}")
        return self._endpoint

    def pre_pick(self, platform, app: str, function: str, inputs: dict):
        """Query every memory node for stale compute nodes (a generator).

        This is the per-invocation overhead the paper measures as a 2.8x
        scheduler response-time increase.
        """
        system = self.systems.get(app)
        if system is None:
            return
        endpoint = self._scheduler_endpoint(platform.cluster.network)
        queries = [
            platform.sim.spawn(
                endpoint.call(
                    memory_node.endpoint.address, "stale_query", None,
                    size_bytes=8, timeout=DEFAULT_RPC_TIMEOUT_MS,
                ),
                name="stale-q",
            )
            for memory_node in system.memory.values()
        ]
        if queries:
            yield platform.sim.all_of(queries)
        self.scheduling_queries += 1

    def pick(self, app, function, inputs, candidates):
        system = self.systems.get(app)
        stale = system.stale_nodes() if system is not None else set()
        available = [n for n in candidates if n.id not in stale]
        self.unavailable_samples.append(len(candidates) - len(available))
        pool = available or candidates
        return self._fallback.pick(app, function, inputs, pool)
