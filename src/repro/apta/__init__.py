"""Software version of the Apta fault-tolerant coherence protocol.

Apta (DSN '23) targets CXL-disaggregated memory: separate compute and
memory nodes, the directory at the memory nodes, write-through caches,
*lazy invalidations* (writes complete before sharers are invalidated) and
coherence-aware scheduling (functions are not scheduled onto nodes that
temporarily hold stale data).  The paper builds a software version on its
cluster and compares (Section VII); this package is that software version.
"""

from repro.apta.system import AptaScheduler, AptaSystem, make_memory_tier

__all__ = ["AptaScheduler", "AptaSystem", "make_memory_tier"]
