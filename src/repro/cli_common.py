"""Shared argparse surface for the ``repro-*`` command-line tools.

All four console scripts — ``repro-analyze``, ``repro-trace``,
``repro-metrics``, ``repro-bench`` — build their parsers on the parent
returned by :func:`common_parent`, so the flags every tool shares are
spelled, typed and documented identically everywhere:

``--format {text,json,...}``
    Output format (default ``text``; a tool may offer extra formats,
    e.g. ``sarif`` for repro-analyze).
``--out PATH``
    Write the tool's output to ``PATH`` instead of stdout (for
    repro-bench ``run`` this is the report path, its original meaning).
``--seed N``
    Deterministic seed override, where the tool runs a simulation.
``--since T`` / ``--until T``
    Sim-time window (milliseconds) the tool restricts itself to, where
    the tool reads recorded timelines (repro-trace, repro-metrics,
    repro-inspect).  Point records are kept when ``since <= t <= until``;
    ranged records (spans) when they overlap the window.

Exit-code contract (identical across all four tools):

===  ====================================================================
0    success / clean gate
1    tool-level failure: error findings, bench-gate regression,
     failed jobs, empty metric selection
2    usage or I/O error: unknown flags, missing or unreadable input
     file, malformed input, unwritable ``--out``
===  ====================================================================

argparse itself exits 2 on unknown flags, which is why 2 doubles as the
usage code here.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = [
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_USAGE",
    "common_parent",
    "output_stream",
    "in_window",
    "overlaps_window",
]

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2


def common_parent(
    *,
    formats: Optional[Sequence[str]] = None,
    default_format: str = "text",
    seed: bool = False,
    seed_help: str = "deterministic seed override",
    out: bool = False,
    out_default: Optional[str] = None,
    out_help: str = "write output to PATH instead of stdout",
    window: bool = False,
) -> argparse.ArgumentParser:
    """Build the shared parent parser (``add_help=False``).

    Each tool enables the subset of shared flags it supports; enabled
    flags carry identical spelling and semantics across tools.  Pass the
    result via ``argparse.ArgumentParser(parents=[...])``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    if formats is not None:
        parent.add_argument(
            "--format", choices=tuple(formats), default=default_format,
            help=f"output format (default: {default_format})")
    if seed:
        parent.add_argument("--seed", type=int, default=None,
                            help=seed_help)
    if out:
        parent.add_argument("--out", default=out_default, metavar="PATH",
                            help=out_help)
    if window:
        parent.add_argument(
            "--since", type=float, default=None, metavar="T",
            help="restrict to simulated time >= T milliseconds")
        parent.add_argument(
            "--until", type=float, default=None, metavar="T",
            help="restrict to simulated time <= T milliseconds")
    return parent


def in_window(t: float, since: Optional[float],
              until: Optional[float]) -> bool:
    """Shared ``--since/--until`` semantics for point records."""
    if since is not None and t < since:
        return False
    if until is not None and t > until:
        return False
    return True


def overlaps_window(start: float, end: float, since: Optional[float],
                    until: Optional[float]) -> bool:
    """Shared ``--since/--until`` semantics for ranged records (spans)."""
    if since is not None and end < since:
        return False
    if until is not None and start > until:
        return False
    return True


class output_stream:
    """Context manager for the stream tool output should go to.

    ``path`` is the tool's ``--out`` value: None yields ``fallback``
    (stdout unless the caller injected a stream for testing); a path
    yields a freshly opened text file, closed on exit.  ``OSError`` from
    an unwritable path propagates — callers map it to exit code 2.
    """

    def __init__(self, path: Optional[str], fallback=None):
        self._path = path
        self._fallback = fallback
        self._handle = None

    def __enter__(self):
        if self._path is None:
            return self._fallback if self._fallback is not None else sys.stdout
        self._handle = open(self._path, "w", encoding="utf-8")
        return self._handle

    def __exit__(self, *exc_info):
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        return False
