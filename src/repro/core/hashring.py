"""Consistent hashing ring for home-node assignment.

All cache agents of an application form a ring (paper Section III-C1); the
home of a data item is the first agent clockwise from the item's hash.
Virtual nodes smooth the key distribution so that adding/removing one agent
re-homes roughly ``1/n`` of the keys.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional


class EmptyRingError(LookupError):
    """A lookup or mutation needed members but the ring has none.

    Subclasses :class:`LookupError` so existing ``except LookupError``
    call sites keep working; the dedicated type lets callers distinguish
    "ring drained" from an ordinary missing-key lookup.
    """


def _hash(value: str) -> int:
    """Stable 64-bit position on the ring."""
    return int.from_bytes(hashlib.md5(value.encode()).digest()[:8], "big")


#: value -> position memo shared by all rings (_hash is a pure function,
#: and the workload keyspace is small and closed, so this stays bounded).
_HASH_MEMO: dict[str, int] = {}


def _hash_cached(value: str) -> int:
    position = _HASH_MEMO.get(value)
    if position is None:
        position = _hash(value)
        _HASH_MEMO[value] = position
    return position


class ConsistentHashRing:
    """Maps keys to member ids via consistent hashing.

    Members are arbitrary strings (node ids).  The ring is a value object
    in the sense that two rings with the same members map keys
    identically — every agent computes homes independently yet agrees
    (decentralized re-homing, Section III-D).
    """

    def __init__(self, members: Iterable[str] = (), virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._members: set[str] = set()
        self._positions: list[int] = []      # sorted virtual-node hashes
        self._owners: dict[int, str] = {}    # position -> member
        #: key -> home memo, invalidated wholesale on membership change
        #: (home() is a pure function of key + membership).
        self._home_cache: dict[str, str] = {}
        for member in members:
            self.add(member)

    # -- membership -----------------------------------------------------------
    @property
    def members(self) -> set[str]:
        return set(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def add(self, member: str) -> None:
        """Add ``member``; idempotent."""
        if member in self._members:
            return
        self._members.add(member)
        self._home_cache.clear()
        for replica in range(self.virtual_nodes):
            position = _hash_cached(f"{member}#{replica}")
            # Collisions across members are vanishingly unlikely with
            # 64-bit positions; last add wins deterministically if one
            # ever occurs.
            index = bisect.bisect_left(self._positions, position)
            if index < len(self._positions) and self._positions[index] == position:
                self._owners[position] = member
                continue
            self._positions.insert(index, position)
            self._owners[position] = member

    def remove(self, member: str) -> None:
        """Remove ``member``; idempotent on a non-empty ring.

        Removing from an *empty* ring raises :class:`EmptyRingError`: it
        always indicates the caller lost track of membership, and the old
        silent no-op let such bugs surface later as misrouted keys.
        """
        if not self._members:
            raise EmptyRingError(
                f"cannot remove {member!r}: hash ring is empty")
        if member not in self._members:
            return
        self._members.remove(member)
        self._home_cache.clear()
        for replica in range(self.virtual_nodes):
            position = _hash_cached(f"{member}#{replica}")
            if self._owners.get(position) == member:
                index = bisect.bisect_left(self._positions, position)
                if index < len(self._positions) and self._positions[index] == position:
                    self._positions.pop(index)
                del self._owners[position]

    def copy(self) -> "ConsistentHashRing":
        """An independent ring with the same members."""
        return ConsistentHashRing(self._members, self.virtual_nodes)

    def with_members(self, members: Iterable[str]) -> "ConsistentHashRing":
        """A new ring over ``members`` with this ring's parameters.

        Polymorphic constructor: router-like ring implementations override
        this so joiners rebuild the *same kind* of topology (sharded or
        flat) from a participant list.
        """
        return ConsistentHashRing(members, self.virtual_nodes)

    # -- lookups -----------------------------------------------------------
    def home(self, key: str) -> str:
        """The member owning ``key`` (first clockwise from the key's hash)."""
        member = self._home_cache.get(key)
        if member is not None:
            return member
        if not self._positions:
            raise EmptyRingError("hash ring is empty")
        position = _hash_cached(key)
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):
            index = 0  # wrap around the ring
        member = self._owners[self._positions[index]]
        self._home_cache[key] = member
        return member

    def preference_list(self, key: str, n: int) -> tuple[str, ...]:
        """The first ``n`` *distinct* members clockwise from ``key``.

        Position 0 is ``home(key)``; the rest are the natural replica
        chain for the key (Dynamo-style preference list).  Because member
        removal deletes only the removed member's virtual nodes, the
        surviving entries keep their relative order — so chains evolve by
        dropping dead members in place, which makes "next in chain"
        failover a pure function of the membership set.
        """
        if not self._positions:
            raise EmptyRingError("hash ring is empty")
        position = _hash_cached(key)
        index = bisect.bisect_right(self._positions, position)
        chain: list[str] = []
        seen: set[str] = set()
        count = len(self._positions)
        for step in range(count):
            owner = self._owners[self._positions[(index + step) % count]]
            if owner not in seen:
                seen.add(owner)
                chain.append(owner)
                if len(chain) == n:
                    break
        return tuple(chain)

    def successor(self, member: str) -> Optional[str]:
        """The member a departing ``member``'s keys re-home to.

        With virtual nodes the keys spread over several successors; this
        returns the member that inherits the *first* virtual replica, used
        only as a representative (actual re-homing recomputes per key).
        """
        if member not in self._members or len(self._members) < 2:
            return None
        without = self.copy()
        without.remove(member)
        return without.home(f"{member}#0")

    def rehomed_keys(self, keys: Iterable[str], member: str) -> dict[str, str]:
        """For each key homed at ``member``, its new home once ``member`` leaves.

        Raises :class:`EmptyRingError` if the ring is empty or removing
        ``member`` would drain it — there is no "new home" to report, and
        silently returning an empty mapping would misroute every key.
        """
        if not self._members:
            raise EmptyRingError(
                f"cannot re-home keys from {member!r}: hash ring is empty")
        if self._members == {member}:
            raise EmptyRingError(
                f"cannot re-home keys from {member!r}: removing the last "
                "member leaves the ring empty")
        without = self.copy()
        without.remove(member)
        return {
            key: without.home(key)
            for key in keys
            if self.home(key) == member
        }
