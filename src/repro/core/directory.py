"""The Data Directory: per-home coherence metadata.

Each cache agent manages the directory entries of the data items homed at
its node (paper Section III-C1).  An entry records the set of cache
instances currently caching the item (the *sharers*) and whether the item
is held Exclusive (single sharer, the *owner*) or Shared.

Because evictions are silent (agents do not inform the home when they drop
an item, Section III-C2), the sharer set is a conservative superset of the
caches that actually hold the item — the protocol tolerates "sharers" that
no longer have the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.caching.base import EXCLUSIVE, SHARED
from repro.obs.events import (
    DIR_EXCLUSIVE,
    DIR_PRUNE,
    DIR_REMOVE,
    DIR_SHARER,
    DIR_TRANSFER,
)

#: Approximate wire size of one marshalled directory entry (used for
#: domain-change transfers and follower replication snapshots alike).
ENTRY_WIRE_BYTES = 48


@dataclass
class DirectoryEntry:
    """Directory state for one data item."""

    key: str
    state: str = EXCLUSIVE  # EXCLUSIVE or SHARED
    sharers: set = field(default_factory=set)

    @property
    def owner(self) -> Optional[str]:
        """The single sharer when Exclusive, else None."""
        if self.state == EXCLUSIVE and len(self.sharers) == 1:
            return next(iter(self.sharers))
        return None

    def is_valid(self) -> bool:
        """Structural invariant: E implies exactly one sharer."""
        if self.state == EXCLUSIVE:
            return len(self.sharers) == 1
        return self.state == SHARED and len(self.sharers) >= 1


class DataDirectory:
    """The set of directory entries homed at one cache agent.

    When constructed with a :class:`~repro.trace.Tracer`, directory
    lookups and mutations are recorded as zero-duration ``directory``
    events inside whatever operation span is current — the "directory
    lookup" nodes of the per-op trace tree.  The directory itself has no
    clock; timestamps come from the tracer's simulator.
    """

    def __init__(self, node_id: str, tracer=None, obs=None):
        self.node_id = node_id
        self.tracer = tracer
        #: Flight recorder for ownership/sharer-set change events (the
        #: agent hands in its simulator's recorder); None disables.
        self.obs = obs
        self._entries: dict[str, DirectoryEntry] = {}

    def register_metrics(self, registry, scheme: str, app: str) -> None:
        """Register sharer-set gauges for this home's directory.

        Callbacks use :meth:`sharer_counts` (value lists, never set
        iteration) so sampling stays hash-order independent.
        """
        if not registry.active:
            return
        labels = {"scheme": scheme, "app": app, "node": self.node_id}
        registry.gauge(
            "directory_entries", "Items homed at this directory.",
            labelnames=("app", "node", "scheme"),
        ).set_callback(lambda: len(self._entries), **labels)

        def sharers_max() -> int:
            counts = self.sharer_counts()
            return max(counts) if counts else 0

        registry.gauge(
            "directory_sharers_max", "Largest sharer set homed here.",
            labelnames=("app", "node", "scheme"),
        ).set_callback(sharers_max, **labels)

        def sharers_mean() -> float:
            counts = self.sharer_counts()
            return sum(counts) / len(counts) if counts else 0.0

        registry.gauge(
            "directory_sharers_mean", "Mean sharer-set size homed here.",
            labelnames=("app", "node", "scheme"),
        ).set_callback(sharers_mean, **labels)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[DirectoryEntry]:
        entry = self._entries.get(key)
        tracer = self.tracer
        if tracer is not None and tracer.active:
            tracer.instant("dir:get", "directory", key=key,
                           state=entry.state if entry is not None else "miss",
                           sharers=len(entry.sharers) if entry else 0)
        return entry

    def peek(self, key: str) -> Optional[DirectoryEntry]:
        """Trace-free lookup (replication snapshots, invariant checks)."""
        return self._entries.get(key)

    def keys(self) -> list[str]:
        return list(self._entries.keys())

    def entries(self) -> list[DirectoryEntry]:
        return list(self._entries.values())

    def set_exclusive(self, key: str, owner: str) -> DirectoryEntry:
        """(Re)create the entry with a single exclusive owner."""
        entry = DirectoryEntry(key=key, state=EXCLUSIVE, sharers={owner})
        self._entries[key] = entry
        tracer = self.tracer
        if tracer is not None and tracer.active:
            tracer.instant("dir:set_exclusive", "directory",
                           key=key, owner=owner)
        obs = self.obs
        if obs is not None and obs.active:
            obs.emit(DIR_EXCLUSIVE, node=self.node_id, key=key, owner=owner)
        return entry

    def add_sharer(self, key: str, sharer: str) -> DirectoryEntry:
        """Add a sharer, downgrading to Shared if needed."""
        tracer = self.tracer
        if tracer is not None and tracer.active:
            tracer.instant("dir:add_sharer", "directory",
                           key=key, sharer=sharer)
        entry = self._entries.get(key)
        if entry is None:
            entry = DirectoryEntry(key=key, state=EXCLUSIVE, sharers={sharer})
            self._entries[key] = entry
        else:
            entry.sharers.add(sharer)
            if len(entry.sharers) > 1:
                entry.state = SHARED
        obs = self.obs
        if obs is not None and obs.active:
            obs.emit(DIR_SHARER, node=self.node_id, key=key, sharer=sharer,
                     state=entry.state, sharers=len(entry.sharers))
        return entry

    def downgrade(self, key: str) -> None:
        """Mark the entry Shared (owner lost exclusivity)."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.state = SHARED

    def remove(self, key: str) -> Optional[DirectoryEntry]:
        entry = self._entries.pop(key, None)
        tracer = self.tracer
        if entry is not None and tracer is not None and tracer.active:
            tracer.instant("dir:remove", "directory", key=key)
        obs = self.obs
        if entry is not None and obs is not None and obs.active:
            obs.emit(DIR_REMOVE, node=self.node_id, key=key)
        return entry

    def install(self, entry: DirectoryEntry) -> None:
        """Adopt an entry transferred from another home (domain change)."""
        self._entries[entry.key] = entry
        obs = self.obs
        if obs is not None and obs.active:
            obs.emit(DIR_TRANSFER, node=self.node_id, key=entry.key,
                     state=entry.state, sharers=len(entry.sharers))

    def remove_sharer_everywhere(self, node_id: str) -> list[str]:
        """Prune a departed/failed node from all sharer sets.

        Entries left with no sharers are dropped (nobody caches the item).
        Returns the keys whose entries were modified.
        """
        obs = self.obs
        touched = []
        for key in list(self._entries):
            entry = self._entries[key]
            if node_id not in entry.sharers:
                continue
            entry.sharers.discard(node_id)
            touched.append(key)
            if obs is not None and obs.active:
                obs.emit(DIR_PRUNE, node=self.node_id, key=key,
                         pruned=node_id, sharers=len(entry.sharers))
            if not entry.sharers:
                del self._entries[key]
            elif len(entry.sharers) == 1 and entry.state == SHARED:
                # A single surviving sharer keeps state S (it may not even
                # still cache the item); it re-acquires E through a write.
                pass
        return touched

    def pop_entries_for(self, keys: Iterable[str]) -> list[DirectoryEntry]:
        """Remove and return the entries for ``keys`` (re-homing transfer)."""
        popped = []
        for key in keys:
            entry = self._entries.pop(key, None)
            if entry is not None:
                popped.append(entry)
        return popped

    def sharer_counts(self) -> list[int]:
        """Sharer-set sizes of all current entries (Table I sampling)."""
        return [len(entry.sharers) for entry in self._entries.values()]
