"""The Concord Cache Agent: the data path of the coherence protocol.

One agent per (application, node) manages the local cache instance and the
data directory for locally-homed items (paper Section III-B).  It
implements the six coherence operations of Section III-C2:

- local read hit, remote read hit, read miss,
- local write hit (E and S flavours), remote write hit, write miss,

with the paper's optimizations: silent evictions, E-state writes that go
straight to storage bypassing the home, and invalidations sent in parallel
with the storage update (except the single-owner case, which is serial).

Fault tolerance and domain changes use a *barrier* mechanism: when a
member fails or the domain is reconfiguring, operations on the keys whose
home is affected wait until the new ring is committed everywhere
(Sections III-D, III-F, III-H).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.caching.base import AccessContext, CacheEntry, EXCLUSIVE, LruCache, SHARED
from repro.core.directory import DataDirectory, ENTRY_WIRE_BYTES
from repro.metrics import OpKind
from repro.obs.events import (
    BARRIER_LIFT,
    BARRIER_RAISE,
    CACHE_DOWNGRADE,
    CACHE_INSTALL,
    CACHE_INVALIDATE,
    CACHE_UPDATE,
    INV_RECV,
    INV_SEND,
    MEMBER_EJECT,
    PEER_UNREACHABLE,
)
from repro.net.rpc import INHERIT, Endpoint, Reply, RpcError, RpcTimeout
from repro.net.sizes import sizeof
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.concord import ConcordSystem


class ProtocolError(Exception):
    """An operation could not complete after exhausting retries."""


class NotHome(RpcError):
    """The contacted agent is not the key's home per its current ring."""


class NotCached:
    """Sentinel reply from an owner that silently evicted the item."""


#: Delay between retries when an operation must re-resolve its home.
RETRY_DELAY_MS = 1.0
MAX_ATTEMPTS = 60


class CacheAgent:
    """The per-node protocol engine of one application's Concord cache."""

    def __init__(self, system: "ConcordSystem", node_id: str, capacity_bytes: int):
        self.system = system
        self.sim = system.sim
        self.node_id = node_id
        self.app = system.app
        self.cache = LruCache(capacity_bytes, name=f"concord:{system.app}:{node_id}")
        self.cache.obs = self.sim.obs
        self.directory = DataDirectory(node_id, tracer=self.sim.tracer,
                                       obs=self.sim.obs)
        self.ring = system.ring_template.copy()
        node = system.cluster.nodes.get(node_id)
        self.endpoint = Endpoint(
            system.cluster.network, node_id, f"concord-{system.app}",
            service_time_ms=system.latency.agent_service_ms,
            cpu=node.cores if node is not None else None,
        )
        #: Home-side per-key serialization (directory is the write
        #: serialization point, Section III-C2).
        self._key_locks: dict[str, Resource] = {}
        #: Owner-side lock held during an E-state direct-to-storage write
        #: ("the local cache agent does not accept external requests for
        #: the data item until the storage acknowledges the update").
        self._owner_locks: dict[str, Resource] = {}
        #: Active barriers: affected member -> (ring snapshot that still
        #: contains the member, event fired when the barrier lifts).
        self._barriers: dict[str, tuple] = {}
        #: Producer tracking for placement learning: key -> (node, function).
        self._last_writer: dict[str, tuple] = {}
        #: Hook installed by repro.txn for conflict detection.
        self.txn_manager = None
        self.alive = True
        #: Bumped on every membership change visible to this agent; long
        #: home operations re-check it before mutating the directory.
        self.epoch = 0
        #: member -> event fired when that member leaves this agent's ring
        #: (lets in-flight invalidations/fetches to dead peers abort early).
        self._removal_events: dict[str, object] = {}
        #: True once this agent learned it was (possibly falsely) declared
        #: failed; it flushes and rejoins before serving again.
        self.ejected = False
        #: Async directory mirror held as a shard *follower*:
        #: key -> (state, sharers tuple).  Fed by fire-and-forget
        #: ``dir_replicate`` notifies from the shard leader; consumed on
        #: failover adoption.  May lag arbitrarily — adoption soundness
        #: never depends on its freshness (see ConcordSystem._shard_failover).
        self.dir_mirror: dict[str, tuple] = {}
        #: Telemetry counters (sampled by repro.telemetry when enabled).
        self.invalidations_sent = 0
        self.invalidations_received = 0
        #: Invalidation round trips currently awaiting an acknowledgement.
        self.invalidations_inflight = 0
        self._register_metrics()

        handlers = {
            "read": self._handle_read,
            "write": self._handle_write,
            "rfo": self._handle_rfo,
            "fetch_downgrade": self._handle_fetch_downgrade,
            "invalidate": self._handle_invalidate,
            "external_write": self._handle_external_write,
            "dir_replicate": self._handle_dir_replicate,
        }
        for method, handler in handlers.items():
            self.endpoint.register_handler(method, handler)

    def _register_metrics(self) -> None:
        """Expose per-node coherence instruments on the sim registry.

        Agents created by churn re-register the same label sets; the
        registry's get-or-create children make that an overwrite of the
        dead agent's callbacks, so timelines follow the live instance.
        """
        metrics = self.sim.metrics
        if not metrics.active:
            return
        from repro.caching.base import register_cache_gauges

        register_cache_gauges(metrics, self.cache, scheme="concord",
                              app=self.app, node=self.node_id)
        labels = {"scheme": "concord", "app": self.app, "node": self.node_id}
        metrics.counter(
            "cache_invalidations_sent_total",
            "Invalidation RPCs issued to remote sharers.",
            labelnames=("app", "node", "scheme"),
        ).set_callback(lambda: self.invalidations_sent, **labels)
        metrics.counter(
            "cache_invalidations_received_total",
            "Invalidation RPCs served for remote homes.",
            labelnames=("app", "node", "scheme"),
        ).set_callback(lambda: self.invalidations_received, **labels)
        metrics.gauge(
            "cache_invalidations_pending",
            "Invalidation round trips awaiting acknowledgement.",
            labelnames=("app", "node", "scheme"),
        ).set_callback(lambda: self.invalidations_inflight, **labels)
        self.directory.register_metrics(metrics, scheme="concord",
                                        app=self.app)

    # ------------------------------------------------------------------
    # Public data path (called by ConcordSystem.read / write)
    # ------------------------------------------------------------------
    def read(self, key: str, ctx: Optional[AccessContext] = None):
        """Read ``key``; returns ``(value, OpKind)``."""
        yield self.sim.sleep(self.system.latency.local_access)
        entry = self.cache.get(key)
        while entry is not None:
            verdict = True
            if self.txn_manager is not None:
                verdict = self.txn_manager.on_local_access(
                    key, entry, ctx, is_write=False)
            if verdict is True:
                return entry.value, OpKind.LOCAL_READ_HIT
            if verdict is False:
                # A conflicting transaction was squashed and the entry
                # discarded; resolve the committed value via the home.
                entry = None
                break
            # A protected transaction owns the entry: wait, then retry.
            yield verdict
            entry = self.cache.get(key)

        value, state, dir_hit, cacheable = yield from self._read_via_home(key, ctx)
        if value is not None and cacheable and not self._key_barred(key):
            # The barred check covers a home that failed (or a domain
            # change that re-homed the key) while the reply was in
            # flight: the recovery eviction sweep already ran here, so
            # installing now would plant a copy nobody tracks.
            self._install(key, value, state, ctx, src="read")
        kind = OpKind.REMOTE_READ_HIT if dir_hit else OpKind.READ_MISS
        return value, kind

    def write(self, key: str, value: object, ctx: Optional[AccessContext] = None):
        """Write ``key``; returns the OpKind once durably stored."""
        yield self.sim.sleep(self.system.latency.local_access)
        entry = self.cache.get(key)
        while entry is not None and self.txn_manager is not None:
            verdict = self.txn_manager.on_local_access(
                key, entry, ctx, is_write=True)
            if verdict is True:
                break
            if verdict is False:
                entry = None  # conflicting speculation squashed; start over
                break
            yield verdict  # protected transaction owns it: wait, retry
            entry = self.cache.get(key)

        if (entry is not None and entry.state == EXCLUSIVE
                and self.system.estate_writes):
            # Local write hit in E: update locally, write straight to
            # storage, bypassing the home (Section III-C2).
            applied = yield from self._estate_write(key, value)
            if applied:
                return OpKind.LOCAL_WRITE_HIT
            # Exclusivity was lost while queued; take the home path.

        had_local_copy = entry is not None  # S state: still a local hit
        kind, cacheable, version = yield from self._write_via_home(key, value, ctx)
        current = self.cache.peek(key)
        if current is not None and current.version > version:
            # A concurrent local write (direct-to-storage in E state)
            # committed a later storage version while this write's reply
            # was in flight; installing our value now would resurrect a
            # stale copy over it.  Storage order wins: keep the entry.
            pass
        elif cacheable and not self._key_barred(key):
            self._install(key, value, EXCLUSIVE, ctx, version=version,
                          src="write_reply")
        else:
            # The value is durably in storage but the coherence state for
            # it was disturbed (membership changed mid-write): hold no copy.
            self.cache.remove(key)
        if had_local_copy:
            return OpKind.LOCAL_WRITE_HIT
        return kind

    def _estate_write(self, key: str, value: object):
        """Direct-to-storage write while holding E (Section III-C2).

        Returns True once applied, or False when the writer queued on
        the owner lock outlived its exclusivity (an invalidation,
        downgrade, or recovery landed while it waited) — writing storage
        directly without E would skip the sharers the home still tracks,
        so the caller must fall back to the home path.
        """
        lock = self._lock(self._owner_locks, key)
        yield lock.acquire()
        try:
            held = self.cache.get(key)
            if held is None or held.state != EXCLUSIVE:
                return False
            version = yield from self.system.storage.write(
                key, value, writer=self.node_id)
            # Update the cached copy only after the write is durable,
            # and only if no later storage version landed locally in
            # the meantime (a racing write's reply may have replaced
            # the entry, or an invalidation may have removed it).
            current = self.cache.get(key)
            if current is not None and current.version <= version:
                prev = current.version
                current.value = value
                current.size_bytes = sizeof(value)
                current.version = version
                obs = self.sim.obs
                if obs.active:
                    obs.emit(CACHE_UPDATE, node=self.node_id, key=key,
                             version=version, prev=prev)
            self.system.stats.invalidations_per_write.record(0)
            return True
        finally:
            lock.release()

    # ------------------------------------------------------------------
    # Requester-side routing with barriers and retries
    # ------------------------------------------------------------------
    def _read_via_home(self, key: str, ctx):
        fn = ctx.function if ctx is not None else ""
        for _attempt in range(MAX_ATTEMPTS):
            yield from self._barrier_wait(key)
            home = self.ring.home(key)
            epoch = self.epoch
            if home == self.node_id:
                try:
                    reply = yield from self._home_read(key, self.node_id, fn)
                    if self.epoch != epoch:
                        value, state, dir_hit, _ = reply
                        return value, state, dir_hit, False
                    return reply
                except NotHome:
                    yield self.sim.timeout(RETRY_DELAY_MS)
                    continue
            try:
                reply = yield from self.endpoint.call(
                    f"{home}/concord-{self.app}", "read", (key, self.node_id, fn),
                    size_bytes=len(key) + 8,
                    timeout=self.system.config.rpc_timeout_ms,
                    trace=INHERIT,
                )
                if self.epoch != epoch or self.ring.home(key) != home:
                    # The membership changed (or the key re-homed) while
                    # the grant was in flight; the registration the home
                    # recorded for us may already have been purged, so
                    # the copy must not be cached — but the value itself
                    # is still good.
                    value, state, dir_hit, _ = reply
                    return value, state, dir_hit, False
                return reply
            except RpcTimeout:
                yield from self._peer_unreachable(home)
            except NotHome:
                yield self.sim.timeout(RETRY_DELAY_MS)
        raise ProtocolError(f"read({key!r}) exhausted retries at {self.node_id}")

    def _write_via_home(self, key: str, value: object, ctx):
        fn = ctx.function if ctx is not None else ""
        for _attempt in range(MAX_ATTEMPTS):
            yield from self._barrier_wait(key)
            home = self.ring.home(key)
            epoch = self.epoch
            if home == self.node_id:
                try:
                    kind, cacheable, version = yield from self._home_write(
                        key, value, self.node_id, fn)
                    if cacheable and self.epoch != epoch:
                        cacheable = False
                    return kind, cacheable, version
                except NotHome:
                    yield self.sim.timeout(RETRY_DELAY_MS)
                    continue
            try:
                kind_name, cacheable, version = yield from self.endpoint.call(
                    f"{home}/concord-{self.app}", "write",
                    (key, value, self.node_id, fn),
                    size_bytes=sizeof(value) + len(key),
                    timeout=self.system.config.rpc_timeout_ms,
                    trace=INHERIT,
                )
                if cacheable and (self.epoch != epoch
                                  or self.ring.home(key) != home):
                    # Membership changed mid-write: the write is durable,
                    # but the exclusivity the old home granted is void.
                    cacheable = False
                return OpKind(kind_name), cacheable, version
            except RpcTimeout:
                yield from self._peer_unreachable(home)
            except NotHome:
                yield self.sim.timeout(RETRY_DELAY_MS)
        raise ProtocolError(f"write({key!r}) exhausted retries at {self.node_id}")

    def acquire_exclusive(self, key: str, ctx: Optional[AccessContext] = None):
        """Read-for-ownership (transactions, Section IV-A): become the
        exclusive owner of ``key`` — invalidating other sharers — without
        writing storage.  Returns the current committed value.

        The transactional runtime buffers speculative writes in entries
        acquired this way, so conflicting remote reads and writes are
        guaranteed to arrive at this agent (as fetch_downgrade /
        invalidate) and trigger a squash.
        """
        yield self.sim.sleep(self.system.latency.local_access)
        entry = self.cache.get(key)
        if entry is not None and entry.state == EXCLUSIVE:
            return entry.value
        has_local = entry is not None
        for _attempt in range(MAX_ATTEMPTS):
            yield from self._barrier_wait(key)
            home = self.ring.home(key)
            epoch = self.epoch
            try:
                if home == self.node_id:
                    value, cacheable = yield from self._home_rfo(
                        key, self.node_id, has_local)
                else:
                    value, cacheable = yield from self.endpoint.call(
                        f"{home}/concord-{self.app}", "rfo",
                        (key, self.node_id, has_local),
                        size_bytes=len(key) + 8,
                        timeout=self.system.config.rpc_timeout_ms,
                        trace=INHERIT,
                    )
                if value is None and has_local:
                    # Upgrade: no data traveled because we hold a Shared
                    # copy — unless a racing write invalidated it while
                    # the upgrade was in flight; then retry with a fetch.
                    current = self.cache.peek(key)
                    if current is None:
                        has_local = False
                        continue
                    value = current.value
            except NotHome:
                yield self.sim.timeout(RETRY_DELAY_MS)
                continue
            except RpcTimeout:
                yield from self._peer_unreachable(home)
                continue
            if (self._key_barred(key) or self.epoch != epoch
                    or self.ring.home(key) != home):
                # The home failed (or the key re-homed) while the grant
                # was in flight; the ownership it conferred is void.
                # Re-acquire once the barrier lifts.
                continue
            if not cacheable:
                # The home lost its homeship mid-RFO and never recorded
                # us as owner.  Unlike a plain write, RFO exists *only*
                # for the ownership — returning an untracked value would
                # let the txn layer write in E-state behind the new
                # home's back.  Re-acquire from the current home.
                has_local = self.cache.peek(key) is not None
                yield self.sim.timeout(RETRY_DELAY_MS)
                continue
            self._install(key, value, EXCLUSIVE, ctx, src="rfo")
            return value
        raise ProtocolError(f"rfo({key!r}) exhausted retries at {self.node_id}")

    def _home_rfo(self, key: str, requester: str, requester_has_copy: bool = False):
        """Home side of read-for-ownership: returns (value, cacheable).

        When the requester already holds a Shared copy, this is a pure
        *upgrade* — other sharers are invalidated and no data travels
        (value is None).  Otherwise the data comes from the home's own
        Shared copy if it has one, falling back to storage.
        """
        tracer = self.sim.tracer
        if not tracer.active:
            return (yield from self._home_rfo_impl(key, requester,
                                                   requester_has_copy))
        with tracer.span("home_rfo", "agent", key=key, requester=requester):
            return (yield from self._home_rfo_impl(key, requester,
                                                   requester_has_copy))

    def _home_rfo_impl(self, key, requester, requester_has_copy):
        lock = self._lock(self._key_locks, key)
        yield lock.acquire()
        try:
            yield from self._barrier_wait(key)
            if self.ring.home(key) != self.node_id or self.ejected:
                raise NotHome(f"{self.node_id} lost home of {key!r}")
            epoch = self.epoch
            entry = self.directory.get(key)
            value = None
            had_shared_copy = False
            if entry is not None:
                if entry.state == SHARED and not requester_has_copy:
                    # Write-through keeps every Shared copy current; grab
                    # the home's own copy before it gets invalidated.
                    local = self.cache.peek(key)
                    if local is not None:
                        value = local.value
                        had_shared_copy = True
                victims = sorted(entry.sharers - {requester, self.node_id})
                if self.node_id in entry.sharers and self.node_id != requester:
                    self._invalidate_local(key)
                yield from self._invalidate_sharers(key, victims)
            if not requester_has_copy and not had_shared_copy:
                # After all invalidations acked, storage holds the latest
                # committed value (write-through + owner-lock ordering).
                value, _version = yield from self.system.storage.read(
                    key, reader=self.node_id)
            if not self._still_home(key, epoch):
                return value, False
            self.directory.set_exclusive(key, requester)
            self._replicate_entry(key)
            return value, True
        finally:
            lock.release()

    def _handle_rfo(self, endpoint, src, args):
        key, requester, requester_has_copy = args
        yield from self._check_home(key)
        value, cacheable = yield from self._home_rfo(
            key, requester, requester_has_copy)
        return Reply((value, cacheable), size_bytes=sizeof(value) + 2)

    def _peer_unreachable(self, peer: str):
        """An RPC to ``peer`` timed out: report it and await the fallout.

        Section III-H: the waiting node informs the controller, the
        coordination service removes the peer's cache instance, and the
        waiter retries once the membership change reaches it.
        """
        obs = self.sim.obs
        if obs.active:
            obs.emit(PEER_UNREACHABLE, node=self.node_id, peer=peer)
        self.system.report_unreachable(peer)
        # Give the failure notification time to propagate and the local
        # membership handler time to erect the barrier.
        yield self.sim.timeout(RETRY_DELAY_MS)

    # ------------------------------------------------------------------
    # Home-side protocol (runs under the per-key home lock)
    # ------------------------------------------------------------------
    def _still_home(self, key: str, epoch: int) -> bool:
        """Whether this agent may mutate the directory entry for ``key``.

        Long home operations yield (storage, invalidations); if membership
        changed underneath them the entry may have been transferred, lost
        or recreated elsewhere — mutating it here would fork the directory.
        A raised barrier covering ``key`` means a domain change has already
        popped (or will not see) this key's entry: creating one now would
        park it at a home the committed ring no longer agrees on.
        """
        return (
            not self.ejected
            and self.epoch == epoch
            and self.ring.home(key) == self.node_id
            and not self._key_barred(key)
        )

    def _key_barred(self, key: str) -> bool:
        """Whether any raised barrier's snapshot re-homes ``key``."""
        for member, (ring_snapshot, _event) in self._barriers.items():
            if ring_snapshot.home(key) == member:
                return True
        return False

    def _home_read(self, key: str, requester: str, fn: str = ""):
        """Serve a read at the home; returns (value, state, dir_hit, cacheable)."""
        tracer = self.sim.tracer
        if not tracer.active:
            return (yield from self._home_read_impl(key, requester, fn))
        with tracer.span("home_read", "agent", key=key, requester=requester):
            return (yield from self._home_read_impl(key, requester, fn))

    def _home_read_impl(self, key, requester, fn):
        lock = self._lock(self._key_locks, key)
        yield lock.acquire()
        try:
            # A domain change may have re-homed the key while this request
            # queued on the lock; re-verify before touching the directory.
            yield from self._barrier_wait(key)
            if self.ring.home(key) != self.node_id or self.ejected:
                raise NotHome(f"{self.node_id} lost home of {key!r}")
            epoch = self.epoch
            entry = self.directory.get(key)
            if entry is None:
                # Read miss: fetch from storage, requester becomes E owner.
                value, _version = yield from self.system.storage.read(
                    key, reader=self.node_id)
                if value is None:
                    return None, EXCLUSIVE, False, False
                if not self._still_home(key, epoch):
                    return value, EXCLUSIVE, False, False
                self.directory.set_exclusive(key, requester)
                self._replicate_entry(key)
                return value, EXCLUSIVE, False, True

            self._observe_consumer(key, requester, fn)
            if entry.state == EXCLUSIVE:
                owner = entry.owner
                if owner == requester:
                    # Requester evicted silently but is still registered;
                    # storage is current (write-through).
                    value, _version = yield from self.system.storage.read(
                        key, reader=self.node_id)
                    cacheable = self._still_home(key, epoch)
                    return value, EXCLUSIVE, True, cacheable
                value = yield from self._fetch_from_owner(key, owner)
                if not self._still_home(key, epoch):
                    return value, SHARED, True, False
                if value is not None:
                    # Owner downgraded to S; both are sharers now.
                    entry.state = SHARED
                    entry.sharers.add(requester)
                    self._replicate_entry(key)
                    return value, SHARED, True, True
                # Owner evicted (or died): storage copy is current.
                value, _version = yield from self.system.storage.read(
                    key, reader=self.node_id)
                if not self._still_home(key, epoch):
                    return value, EXCLUSIVE, True, False
                self.directory.set_exclusive(key, requester)
                self._replicate_entry(key)
                return value, EXCLUSIVE, True, True

            # Shared: serve from the home's own cache if present, else storage.
            local = self.cache.get(key)
            if local is not None:
                value = local.value
            else:
                value, _version = yield from self.system.storage.read(
                    key, reader=self.node_id)
            if not self._still_home(key, epoch):
                return value, SHARED, True, False
            entry.sharers.add(requester)
            self._replicate_entry(key)
            return value, SHARED, True, True
        finally:
            lock.release()

    def _home_write(self, key: str, value: object, requester: str, fn: str = ""):
        """Serialize a write at the home.

        Returns ``(OpKind, cacheable, storage_version)`` — the version the
        write committed at, so the requester can order its cache install
        against concurrent direct-to-storage writes.
        """
        tracer = self.sim.tracer
        if not tracer.active:
            return (yield from self._home_write_impl(key, value, requester, fn))
        with tracer.span("home_write", "agent", key=key, requester=requester):
            return (yield from self._home_write_impl(key, value, requester, fn))

    def _home_write_impl(self, key, value, requester, fn):
        lock = self._lock(self._key_locks, key)
        yield lock.acquire()
        try:
            yield from self._barrier_wait(key)
            if self.ring.home(key) != self.node_id or self.ejected:
                raise NotHome(f"{self.node_id} lost home of {key!r}")
            epoch = self.epoch
            if fn:
                self._note_producer(key, requester, fn)
            entry = self.directory.get(key)
            if entry is None:
                # Write miss: update storage, requester becomes E owner.
                version = yield from self.system.storage.write(
                    key, value, writer=requester)
                self.system.stats.invalidations_per_write.record(0)
                if not self._still_home(key, epoch):
                    return OpKind.WRITE_MISS, False, version
                self.directory.set_exclusive(key, requester)
                self._replicate_entry(key)
                return OpKind.WRITE_MISS, True, version

            if entry.state == EXCLUSIVE and entry.owner != requester:
                # Single owner: invalidate it *before* updating storage
                # (the owner may have a direct-to-storage write in flight).
                yield from self._invalidate_sharers(key, [entry.owner])
                version = yield from self.system.storage.write(
                    key, value, writer=requester)
                self.system.stats.invalidations_per_write.record(1)
            else:
                # Shared (or stale self-ownership): invalidations travel in
                # parallel with the storage update, hiding their latency.
                victims = sorted(entry.sharers - {requester, self.node_id})
                if self.node_id in entry.sharers and self.node_id != requester:
                    self._invalidate_local(key)
                if self.system.parallel_invalidations:
                    # The agent issues the invalidation sends first (they
                    # serialize on its send path), then the storage write;
                    # all round trips overlap after that.
                    pending = yield from self._send_invalidations(key, victims)
                    storage_done = self.sim.spawn(
                        self.system.storage.write(key, value, writer=requester),
                        name=f"wt:{key}",
                    )
                    yield self.sim.all_of(pending + [storage_done])
                    version = storage_done.value
                else:
                    # Ablation: serialize invalidations before the update.
                    yield from self._invalidate_sharers(key, victims)
                    version = yield from self.system.storage.write(
                        key, value, writer=requester)
                self.system.stats.invalidations_per_write.record(len(victims))
            if not self._still_home(key, epoch):
                return OpKind.REMOTE_WRITE_HIT, False, version
            self.directory.set_exclusive(key, requester)
            self._replicate_entry(key)
            # If the home itself is the writer its cache copy stays E; any
            # other local copy was invalidated above.
            return OpKind.REMOTE_WRITE_HIT, True, version
        finally:
            lock.release()

    def _fetch_from_owner(self, key: str, owner: str):
        """Ask the E-state owner for the data (downgrades it to S)."""
        if owner == self.node_id:
            local = self.cache.get(key)
            if local is None:
                return None
            local.state = SHARED
            obs = self.sim.obs
            if obs.active:
                obs.emit(CACHE_DOWNGRADE, node=self.node_id, key=key,
                         version=local.version)
            return local.value
        with self.sim.tracer.span("fetch_owner", "agent", key=key, owner=owner):
            call = self.sim.spawn(
                self._call_catching(
                    f"{owner}/concord-{self.app}", "fetch_downgrade", key,
                    len(key)),
                name=f"fetch:{key}:{owner}",
            )
            # Abort early if the owner is declared failed while we wait; its
            # copies are unreadable (crash) or about to be flushed (ejection).
            yield self.sim.any_of([call, self._removal_event(owner)])
            if not call.triggered:
                return None
            status, reply = call.value
            if status == "err":
                if isinstance(reply, RpcTimeout):
                    self.system.report_unreachable(owner)
                return None
            return None if isinstance(reply, NotCached) else reply

    def _send_invalidations(self, key: str, sharers: list):
        """Issue invalidations; returns the ack-wait processes.

        The sends serialize on the agent's NIC/syscall path (``send_ms``
        each) before the round trips overlap — the reason wide-fan-out
        writes creep up with sharer count (Figure 11: 30 -> 32.4 ms).
        """
        pending = []
        for sharer in sharers:
            if sharer == self.node_id:
                self._invalidate_local(key)
                continue
            yield self.sim.timeout(self.system.latency.send_ms)
            self.invalidations_sent += 1
            obs = self.sim.obs
            if obs.active:
                obs.emit(INV_SEND, node=self.node_id, key=key, sharer=sharer)
            pending.append(self.sim.spawn(
                self._invalidate_one(key, sharer), name=f"inv:{key}:{sharer}",
            ))
        return pending

    def _invalidate_sharers(self, key: str, sharers: list):
        """Send invalidations and gather all acknowledgements."""
        pending = yield from self._send_invalidations(key, sharers)
        if pending:
            yield self.sim.all_of(pending)
        return None

    def _invalidate_one(self, key: str, sharer: str):
        if sharer not in self.ring.members:
            return  # already recovered/left; nothing readable remains there
        # One span per sharer: the write's invalidation fan-out shows up
        # as parallel children of the home_write span.
        self.invalidations_inflight += 1
        try:
            with self.sim.tracer.span("invalidate", "invalidation",
                                      key=key, sharer=sharer):
                call = self.sim.spawn(
                    self._call_catching(
                        f"{sharer}/concord-{self.app}", "invalidate", key,
                        len(key)),
                    name=f"invrpc:{key}:{sharer}",
                )
                yield self.sim.any_of([call, self._removal_event(sharer)])
                if not call.triggered:
                    return  # sharer declared failed; recovery handles its copies
                status, reply = call.value
                if status == "err" and isinstance(reply, RpcTimeout):
                    # A dead sharer holds no readable copy; report and move on.
                    self.system.report_unreachable(sharer)
        finally:
            self.invalidations_inflight -= 1

    def _call_catching(self, dst: str, method: str, args: object, size: int):
        """RPC returning ("ok", value) or ("err", exception) — never raises."""
        try:
            value = yield from self.endpoint.call(
                dst, method, args, size_bytes=size,
                timeout=self.system.config.rpc_timeout_ms,
                trace=INHERIT,
            )
        except RpcError as exc:
            return ("err", exc)
        return ("ok", value)

    def _removal_event(self, member: str):
        """Event fired when ``member`` leaves this agent's ring view."""
        event = self._removal_events.get(member)
        if event is None or event.triggered:
            event = self.sim.event(f"removed:{member}")
            self._removal_events[member] = event
        return event

    def member_removed(self, member: str) -> None:
        """Signal waiters that ``member`` left the ring; bump the epoch."""
        self.epoch += 1
        event = self._removal_events.pop(member, None)
        if event is not None and not event.triggered:
            event.succeed()

    def _invalidate_local(self, key: str) -> None:
        entry = self.cache.remove(key)
        if entry is not None:
            obs = self.sim.obs
            if obs.active:
                obs.emit(CACHE_INVALIDATE, node=self.node_id, key=key,
                         state=entry.state)
        if entry is not None and self.txn_manager is not None and entry.speculative:
            self.txn_manager.on_external_invalidate(key, entry)

    # ------------------------------------------------------------------
    # RPC handlers (server side)
    # ------------------------------------------------------------------
    def _check_home(self, key: str):
        """Handlers first wait out barriers, then verify ring ownership."""
        yield from self._barrier_wait(key)
        if self.ring.home(key) != self.node_id or self.ejected:
            raise NotHome(f"{self.node_id} is not home of {key!r}")

    def _handle_read(self, endpoint, src, args):
        key, requester, fn = args
        yield from self._check_home(key)
        value, state, dir_hit, cacheable = yield from self._home_read(
            key, requester, fn)
        return Reply((value, state, dir_hit, cacheable),
                     size_bytes=sizeof(value) + 2)

    def _handle_write(self, endpoint, src, args):
        key, value, requester, fn = args
        yield from self._check_home(key)
        kind, cacheable, version = yield from self._home_write(
            key, value, requester, fn)
        return Reply((kind.value, cacheable, version), size_bytes=8)

    def _handle_fetch_downgrade(self, endpoint, src, key):
        yield from self._wait_protection(key)
        # Wait out any in-flight direct-to-storage E write.
        lock = self._lock(self._owner_locks, key)
        yield lock.acquire()
        lock.release()
        entry = self.cache.get(key)
        if entry is None:
            return Reply(NotCached(), size_bytes=2)
        if self.txn_manager is not None and entry.spec_writer is not None:
            self.txn_manager.on_external_read(key, entry)
            return Reply(NotCached(), size_bytes=2)
        entry.state = SHARED
        obs = self.sim.obs
        if obs.active:
            obs.emit(CACHE_DOWNGRADE, node=self.node_id, key=key,
                     version=entry.version)
        return Reply(entry.value, size_bytes=entry.size_bytes)

    def _handle_invalidate(self, endpoint, src, key):
        self.invalidations_received += 1
        obs = self.sim.obs
        if obs.active:
            obs.emit(INV_RECV, node=self.node_id, key=key, src=src)
        yield from self._wait_protection(key)
        lock = self._lock(self._owner_locks, key)
        yield lock.acquire()
        lock.release()
        self._invalidate_local(key)
        return Reply("ack", size_bytes=1)

    def _wait_protection(self, key: str):
        """Block while a protected (escalated) transaction marks the entry.

        Safe against deadlock: a protected transaction's buffered writes
        are E-state entries, so its commit goes straight to storage and
        never waits on another home's key lock.
        """
        while self.txn_manager is not None:
            entry = self.cache.peek(key)
            if entry is None or not entry.speculative:
                return
            event = self.txn_manager.writer_protection_event(entry)
            if event is None:
                return
            yield event

    def _handle_external_write(self, endpoint, src, args):
        """External write landed in storage: purge every cached copy."""
        key, _version = args
        yield from self._check_home(key)
        lock = self._lock(self._key_locks, key)
        yield lock.acquire()
        try:
            entry = self.directory.get(key)
            if entry is not None:
                victims = sorted(entry.sharers - {self.node_id})
                yield from self._invalidate_sharers(key, victims)
                self._invalidate_local(key)
                self.directory.remove(key)
                self._replicate_entry(key)
            else:
                self._invalidate_local(key)
            return Reply("ack", size_bytes=1)
        finally:
            lock.release()

    # ------------------------------------------------------------------
    # Shard-follower directory mirroring (sharded systems, replication>1)
    # ------------------------------------------------------------------
    def _replicate_entry(self, key: str) -> None:
        """Mirror ``key``'s directory entry to its shard's followers.

        Asynchronous by design (fire-and-forget ``notify``, no sender
        yield): the mirror may lag the directory arbitrarily, and
        failover adoption stays sound anyway because the recovery sweep
        evicts every copy homed at a dead leader first.  On flat or
        unreplicated systems this is a two-attribute-load no-op, keeping
        their schedules byte-identical.
        """
        system = self.system
        if system.replication < 2 or system.shard_manager is None:
            return
        followers = self.ring.followers(key)
        if not followers:
            return
        entry = self.directory.peek(key)
        if entry is None:
            payload = (key, None, ())
        else:
            payload = (key, entry.state, tuple(sorted(entry.sharers)))
        members = self.ring.members
        for follower in followers:
            if follower == self.node_id or follower not in members:
                continue
            self.endpoint.notify(
                f"{follower}/concord-{self.app}", "dir_replicate", payload,
                size_bytes=ENTRY_WIRE_BYTES, trace=INHERIT)

    def _handle_dir_replicate(self, endpoint, src, args):
        """Apply one mirrored entry snapshot (follower side)."""
        key, state, sharers = args
        if state is None:
            self.dir_mirror.pop(key, None)
        else:
            self.dir_mirror[key] = (state, sharers)
        return None
        yield  # pragma: no cover - generator marker

    # ------------------------------------------------------------------
    # Barriers (recovery and domain changes)
    # ------------------------------------------------------------------
    def raise_barrier(self, member: str, ring_snapshot) -> None:
        """Block operations on keys homed at ``member`` until lifted."""
        if member not in self._barriers:
            self._barriers[member] = (ring_snapshot, self.sim.event(f"barrier:{member}"))
            obs = self.sim.obs
            if obs.active:
                obs.emit(BARRIER_RAISE, node=self.node_id, member=member)

    def lift_barrier(self, member: str) -> None:
        barrier = self._barriers.pop(member, None)
        if barrier is not None:
            obs = self.sim.obs
            if obs.active:
                obs.emit(BARRIER_LIFT, node=self.node_id, member=member)
        if barrier is not None and not barrier[1].triggered:
            barrier[1].succeed()

    def _barrier_wait(self, key: str):
        """Wait until no active barrier covers ``key``."""
        for _attempt in range(MAX_ATTEMPTS):
            blocking = None
            for member, (ring_snapshot, event) in self._barriers.items():
                if member in ring_snapshot.members and ring_snapshot.home(key) == member:
                    blocking = event
                    break
            if blocking is None:
                return
            yield blocking
        raise ProtocolError(f"barrier on {key!r} never lifted at {self.node_id}")

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def _install(self, key: str, value: object, state: str, ctx=None, *,
                 version: int = 0, src: str = "") -> None:
        """Cache a fetched/written value, respecting the capacity budget."""
        if self.ejected:
            # The domain wrote this instance off and pruned it from every
            # sharer set; a reply landing after the ejection must not
            # plant a copy nobody tracks.  (eject() already flushed.)
            return
        self.refresh_capacity()
        size = sizeof(value)
        if size > self.cache.capacity_bytes:
            return  # large objects are cached only if memory allows
        existing = self.cache.peek(key)
        if (existing is not None and existing.speculative
                and self.txn_manager is not None):
            # Replacing a speculative entry is a conflict with whoever
            # speculated on it (unless that is the installing transaction).
            self.txn_manager.on_replace(key, existing, ctx)
        entry = CacheEntry(key=key, value=value, state=state, size_bytes=size,
                           version=version)
        if self.txn_manager is not None and ctx is not None and ctx.txn_id:
            self.txn_manager.on_install(key, entry, ctx)
        self.cache.put(entry)
        obs = self.sim.obs
        if obs.active:
            obs.emit(CACHE_INSTALL, node=self.node_id, key=key, state=state,
                     version=version, src=src)

    def refresh_capacity(self) -> None:
        """Track the application's currently-unused container memory."""
        budget = self.system.capacity_for(self.node_id)
        if budget != self.cache.capacity_bytes:
            self.cache.resize(budget)

    def eject(self) -> None:
        """This agent was declared failed (possibly falsely): flush.

        The rest of the domain already treats our directory entries as
        lost and our cached copies as unreadable, so holding on to either
        would fork the coherence state.  The system rejoins us afterwards.
        """
        if self.ejected:
            return
        self.ejected = True
        self.epoch += 1
        obs = self.sim.obs
        if obs.active:
            obs.emit(MEMBER_EJECT, node=self.node_id,
                     cached=len(self.cache), homed=len(self.directory))
        self.cache.clear()
        self.directory = DataDirectory(self.node_id, tracer=self.sim.tracer,
                                       obs=self.sim.obs)
        self.dir_mirror.clear()
        self._last_writer.clear()
        if self.node_id in self.ring.members:
            self.ring.remove(self.node_id)
        for member in list(self._barriers):
            self.lift_barrier(member)

    def evict_keys_homed_at(self, member: str, ring_snapshot) -> int:
        """Recovery step: drop all cached items homed at a failed member."""
        evicted = 0
        for key in self.cache.keys():
            if ring_snapshot.home(key) == member:
                self._invalidate_local(key)
                evicted += 1
        return evicted

    def pop_directory_entries_locked(self, keys: list):
        """Quiesce ``keys`` and pop their directory entries (generator).

        Acquires each key's home lock so no in-flight home operation can
        mutate (or recreate) an entry while it is being transferred to a
        new home; returns ``(entries, release)`` where ``release()`` must
        be called once the transfer is acknowledged.
        """
        locks = [self._lock(self._key_locks, key) for key in keys]
        for lock in locks:
            # Deliberate lock handoff: released by the returned closure
            # once the caller's dir_install RPC is acknowledged.
            yield lock.acquire()  # noqa: PRO03
        entries = self.directory.pop_entries_for(keys)

        def release():
            for lock in locks:
                lock.release()

        return entries, release

    def _lock(self, table: dict, key: str) -> Resource:
        lock = table.get(key)
        if lock is None:
            lock = Resource(self.sim, capacity=1, name=f"{self.node_id}:{key}")
            table[key] = lock
        return lock

    # ------------------------------------------------------------------
    # Placement learning hooks
    # ------------------------------------------------------------------
    def _note_producer(self, key: str, node: str, fn: str) -> None:
        self._last_writer[key] = (node, fn)

    def _observe_consumer(self, key: str, requester: str, fn: str) -> None:
        """A remote read of a recently-written key: producer-consumer edge."""
        producer = self._last_writer.get(key)
        if producer is None or not fn:
            return
        producer_node, producer_fn = producer
        if producer_node != requester and producer_fn and producer_fn != fn:
            self.system.observe_producer_consumer(producer_fn, fn)

    def close(self) -> None:
        """Tear down (graceful leave already transferred the directory)."""
        self.alive = False
        self.cache.clear()
        self.endpoint.close()
