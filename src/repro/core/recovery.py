"""Failure recovery bookkeeping (paper Section III-F).

When the coordination service declares a cache instance failed, every
surviving agent: evicts locally-cached items homed at the failed node,
prunes the failed node from its directory's sharer sets, removes it from
its hash ring, and acknowledges to the application controller.  The
controller lifts the read barrier only once *all* survivors have
acknowledged — this is the guarantee that no cache can read the new value
from storage while another can still read a stale cached copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RecoveryTracker:
    """Controller-side ack counting for one failed member."""

    failed_member: str
    #: Survivors that still owe an acknowledgement.
    awaiting: set = field(default_factory=set)
    #: Acks that arrived before the controller processed the failure
    #: itself (notification order is not guaranteed).
    early_acks: set = field(default_factory=set)
    complete: bool = False

    def ack(self, member: str) -> bool:
        """Record an ack; returns True when recovery just completed."""
        if self.complete:
            return False
        if not self.awaiting:
            self.early_acks.add(member)
            return False
        self.awaiting.discard(member)
        if not self.awaiting:
            self.complete = True
            return True
        return False

    def arm(self, survivors: set) -> bool:
        """Set the survivor set; returns True if already complete."""
        self.awaiting = set(survivors) - self.early_acks
        self.early_acks.clear()
        if not self.awaiting:
            self.complete = True
            return True
        return False

    def survivor_lost(self, member: str) -> bool:
        """A survivor failed too; stop waiting for it."""
        self.awaiting.discard(member)
        if not self.awaiting and not self.complete:
            self.complete = True
            return True
        return False
