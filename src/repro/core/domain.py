"""Dynamic coherence domain helpers (paper Section III-D).

A *coherence domain* is the set of cache instances of one application.
Instances join when the first function instance lands on a new node and
leave when the last one is evicted.  Concord uses a two-phase protocol —
prepare (barriers up, directory entries transferred) then commit (rings
switch) — orchestrated by the application controller; the helpers here
compute which directory entries move.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.hashring import ConsistentHashRing


def ring_with(ring: ConsistentHashRing, member: str) -> ConsistentHashRing:
    """A copy of ``ring`` that includes ``member``."""
    extended = ring.copy()
    extended.add(member)
    return extended


def ring_without(ring: ConsistentHashRing, member: str) -> ConsistentHashRing:
    """A copy of ``ring`` that excludes ``member``."""
    reduced = ring.copy()
    reduced.remove(member)
    return reduced


def keys_moving_to_joiner(
    ring: ConsistentHashRing, joiner: str, keys: Iterable[str]
) -> list[str]:
    """Of ``keys`` (homed at some agent under ``ring``), those that re-home
    to ``joiner`` once it enters the ring."""
    extended = ring_with(ring, joiner)
    return [key for key in keys if extended.home(key) == joiner]


def new_homes_for_leaver(
    ring: ConsistentHashRing, leaver: str, keys: Iterable[str]
) -> dict[str, list[str]]:
    """Group the leaver's ``keys`` by the member that inherits each.

    Consistent hashing guarantees every key moves to a surviving member
    and no key homed elsewhere moves at all.
    """
    reduced = ring_without(ring, leaver)
    by_target: dict[str, list[str]] = {}
    for key in keys:
        by_target.setdefault(reduced.home(key), []).append(key)
    return by_target
