"""The Concord caching system: agents + application controller.

:class:`ConcordSystem` is the per-application entry point.  It implements
the common :class:`~repro.caching.base.StorageAPI` used by function code,
owns one :class:`~repro.core.agent.CacheAgent` per participating node, and
an :class:`AppController` that keeps the Node Directory, orchestrates
two-phase domain changes (Section III-D) and coordinates failure recovery
(Section III-F).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.caching.base import AccessContext, StorageAPI, register_scheme_metrics
from repro.config import MB
from repro.coord.service import CoordinationService, MembershipEvent, ping_handler
from repro.core.agent import RETRY_DELAY_MS, CacheAgent
from repro.core.directory import ENTRY_WIRE_BYTES, DirectoryEntry
from repro.core.domain import keys_moving_to_joiner, new_homes_for_leaver, ring_with
from repro.core.hashring import ConsistentHashRing
from repro.core.recovery import RecoveryTracker
from repro.metrics import AccessStats
from repro.net.rpc import DEFAULT_RPC_TIMEOUT_MS, INHERIT, Endpoint, Reply
from repro.obs.events import (
    DOMAIN_CHANGE,
    MEMBER_JOIN,
    MEMBER_LEAVE,
    RECOVERY_COMPLETE,
    RECOVERY_SURVIVOR,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.storage import GlobalStorage

#: Default cache-instance budget when no container memory exists to
#: repurpose (protocol unit tests run without the FaaS layer).
DEFAULT_CAPACITY = 64 * MB

#: Approximate wire size of one marshalled directory entry.
DIR_ENTRY_WIRE_BYTES = ENTRY_WIRE_BYTES

#: Restart re-admission polling cadence and bound (~60 s simulated).
RESTART_POLL_MS = 25.0
RESTART_POLL_LIMIT = 2400

#: Explicit shard re-home cost charged in sim time when a surviving
#: agent takes over leadership of a shard (shard-table reconfiguration
#: plus routing-epoch bump), per shard gained.
SHARD_REHOME_MS = 1.5
#: Per mirrored directory entry adopted by a new shard leader.
ADOPT_ENTRY_MS = 0.02


class AppController:
    """Per-application control plane.

    Lives on its own (reliable) control node, like the load balancer and
    the coordination service.  Holds the Node Directory — the list of
    nodes hosting a cache instance — serializes domain changes, counts
    recovery acknowledgements and forwards external writes to the proper
    home agent (Section III-C3).
    """

    def __init__(self, system: "ConcordSystem"):
        self.system = system
        self.sim = system.sim
        self.app = system.app
        self.endpoint = Endpoint(
            system.cluster.network, f"ctl-{self.app}", "appctl"
        )
        self.ring = system.ring_template.copy()
        #: Failed member -> ack tracker.
        self._recoveries: dict[str, RecoveryTracker] = {}
        #: Serializes voluntary domain changes.
        self._domain_busy = False
        #: Failure recoveries driven to completion (barriers lifted).
        self.recoveries_completed = 0
        self.endpoint.register_handler("ping", ping_handler)
        self.endpoint.register_handler("membership", self._handle_membership)
        self.endpoint.register_handler("recovery_ack", self._handle_recovery_ack)
        metrics = self.sim.metrics
        if metrics.active:
            metrics.counter(
                "concord_recoveries_completed_total",
                "Failure recoveries completed (read barriers lifted).",
                labelnames=("app",),
            ).set_callback(lambda: self.recoveries_completed, app=self.app)

    @property
    def members(self) -> set:
        return self.ring.members

    # -- failure recovery ------------------------------------------------------
    def _handle_membership(self, endpoint, src, event: MembershipEvent):
        if event.kind == "failed":
            self._on_member_failed(event.member)
        return None
        yield  # pragma: no cover - generator marker

    def _on_member_failed(self, member: str) -> None:
        if member not in self.ring.members:
            return
        self.ring.remove(member)
        self.system.ring_template.remove(member)
        manager = self.system.shard_manager
        if manager is not None:
            manager.record_membership_change(self.ring, member, "failed")
        survivors = set(self.ring.members)
        tracker = self._recoveries.setdefault(member, RecoveryTracker(member))
        for pending in self._recoveries.values():
            if not pending.complete and pending.failed_member != member:
                pending.survivor_lost(member)
        lease = self.system.recovery_lease_ms
        if lease is not None:
            # Lease-based baseline (ZooKeeper-style session expiry): the
            # barrier stays up for the full lease TTL regardless of how
            # quickly survivors actually recover — the conservatism
            # Concord's ack counting avoids (Section III-F).
            tracker.arm(survivors)
            self.sim.spawn(
                self._lease_expiry(member, lease),
                name=f"lease:{self.app}:{member}", daemon=True,
            )
            return
        if tracker.arm(survivors):
            self._finish_recovery(member)

    def _lease_expiry(self, member: str, lease_ms: float):
        yield self.sim.timeout(lease_ms)
        self._finish_recovery(member)

    def _handle_recovery_ack(self, endpoint, src, args):
        failed_member, acking_member = args
        if self.system.recovery_lease_ms is not None:
            return None  # lease mode: completion is time-, not ack-, driven
        tracker = self._recoveries.setdefault(
            failed_member, RecoveryTracker(failed_member)
        )
        if tracker.ack(acking_member):
            self._finish_recovery(failed_member)
        return None
        yield  # pragma: no cover - generator marker

    def _finish_recovery(self, failed_member: str) -> None:
        """All survivors recovered: lift the read barrier everywhere."""
        self.recoveries_completed += 1
        tracer = self.sim.tracer
        if tracer.active:
            tracer.instant("recovery:complete", "recovery",
                           app=self.app, member=failed_member)
        obs = self.sim.obs
        if obs.active:
            obs.emit(RECOVERY_COMPLETE, member=failed_member, app=self.app)
        for node_id in sorted(self.ring.members):
            self.endpoint.notify(
                f"{node_id}/concord-{self.app}", "recovery_complete", failed_member,
                trace=INHERIT,
            )

    # -- voluntary domain changes ----------------------------------------------
    def domain_join(self, joiner: str):
        """Two-phase admission of a new cache instance (a generator)."""
        yield from self._domain_change("join", joiner)

    def domain_leave(self, leaver: str):
        """Two-phase graceful departure of a cache instance (a generator)."""
        yield from self._domain_change("leave", leaver)

    def _domain_change(self, kind: str, member: str):
        while self._domain_busy:
            yield self.sim.timeout(1.0)
        self._domain_busy = True
        try:
            if kind == "join":
                participants = sorted(self.ring.members | {member})
            else:
                participants = sorted(self.ring.members)
            # Phase 1: all agents raise barriers and transfer the
            # directory entries whose home moves.  The authoritative
            # member list rides along so a (re)joining agent can rebuild
            # its ring view from scratch.
            prepare_calls = [
                self.sim.spawn(
                    self.endpoint.call(
                        f"{node_id}/concord-{self.app}", "domain_prepare",
                        (kind, member, participants), size_bytes=32,
                        timeout=DEFAULT_RPC_TIMEOUT_MS,
                        trace=INHERIT,
                    ),
                    name=f"prep:{node_id}",
                )
                for node_id in participants
            ]
            yield self.sim.all_of(prepare_calls)
            # Phase 2: everyone atomically switches to the new ring.  The
            # commit carries the authoritative roster as of commit time:
            # members may have been declared failed since the prepare
            # snapshot was taken, and a not-yet-member joiner receives no
            # failure notifications, so it must not trust its
            # prepare-time view of the membership.
            if kind == "join":
                roster = sorted(self.ring.members | {member})
            else:
                roster = sorted(self.ring.members - {member})
            commit_calls = [
                self.sim.spawn(
                    self.endpoint.call(
                        f"{node_id}/concord-{self.app}", "domain_commit",
                        (kind, member, roster), size_bytes=32,
                        timeout=DEFAULT_RPC_TIMEOUT_MS,
                        trace=INHERIT,
                    ),
                    name=f"commit:{node_id}",
                )
                for node_id in participants
            ]
            yield self.sim.all_of(commit_calls)
            if kind == "join":
                self.ring.add(member)
            else:
                self.ring.remove(member)
            manager = self.system.shard_manager
            if manager is not None:
                manager.record_membership_change(self.ring, member, kind)
            obs = self.sim.obs
            if obs.active:
                obs.emit(DOMAIN_CHANGE, member=member, kind=kind,
                         members=len(self.ring.members))
                event = MEMBER_JOIN if kind == "join" else MEMBER_LEAVE
                obs.emit(event, member=member, app=self.app,
                         members=len(self.ring.members))
        finally:
            self._domain_busy = False

    # -- external writes ----------------------------------------------------------
    def forward_external_write(self, key: str, version: int) -> None:
        """Route an external storage update to the key's home agent."""
        self.sim.spawn(
            self._forward_external(key, version),
            name=f"extwrite:{key}",
            daemon=True,
        )

    def _forward_external(self, key: str, version: int):
        from repro.core.agent import NotHome  # avoid import cycle at module load
        from repro.net.rpc import RpcTimeout

        for _attempt in range(20):
            if not self.ring.members:
                return
            home = self.ring.home(key)
            try:
                yield from self.endpoint.call(
                    f"{home}/concord-{self.app}", "external_write", (key, version),
                    size_bytes=len(key) + 8,
                    trace=INHERIT,
                )
                return
            except (NotHome, RpcTimeout):
                # Home moved (domain change) or died; re-resolve and retry.
                yield self.sim.timeout(5.0)

    def close(self) -> None:
        self.endpoint.close()


class ConcordSystem(StorageAPI):
    """Per-application Concord distributed cache."""

    name = "concord"
    #: E/S/I directory coherence with write-through (paper Section III).
    consistency = "sequential"

    def __init__(
        self,
        cluster: "Cluster",
        app: str = "app",
        node_ids: Optional[Iterable[str]] = None,
        coord: Optional[CoordinationService] = None,
        storage: Optional["GlobalStorage"] = None,
        capacity_override: Optional[int] = None,
        default_capacity: int = DEFAULT_CAPACITY,
        virtual_nodes: int = 64,
        estate_writes: bool = True,
        parallel_invalidations: bool = True,
        recovery_lease_ms: Optional[float] = None,
        shards: Optional[int] = None,
        replication: int = 1,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        self.latency = cluster.config.latency
        self.app = app
        self.coord = coord
        self.storage = storage if storage is not None else cluster.storage
        self.capacity_override = capacity_override
        self.default_capacity = default_capacity
        #: Ablation switches (DESIGN.md section 5): E-state writes that
        #: bypass the home, and invalidations parallel with the storage
        #: update.  Both on in the paper's design.
        self.estate_writes = estate_writes
        self.parallel_invalidations = parallel_invalidations
        #: When set, failure recovery is the lease-based baseline: read
        #: barriers stay up for this TTL instead of lifting when every
        #: survivor has acked (the fig18 availability comparison).
        self.recovery_lease_ms = recovery_lease_ms
        members = list(node_ids) if node_ids is not None else cluster.node_ids
        #: Directory replication degree per shard (chain length); >1 only
        #: meaningful with sharding.
        self.replication = replication
        if shards is not None:
            from repro.shard.router import ShardRouter  # lazy: avoid cycle

            self.ring_template = ShardRouter(
                members, num_shards=shards, replication=replication,
                virtual_nodes=virtual_nodes)
        else:
            self.ring_template = ConsistentHashRing(members, virtual_nodes)
        self._stats = AccessStats()
        #: Hook for placement learning (set by repro.placement).
        self.pct_observer: Optional[Callable[[str, str], None]] = None

        self.controller = AppController(self)
        self.shard_manager = None
        if shards is not None:
            from repro.shard.manager import ShardManager  # lazy: avoid cycle

            self.shard_manager = ShardManager(self, self.controller.ring)
        self.agents: dict[str, CacheAgent] = {}
        for node_id in members:
            self._bootstrap_agent(node_id)
        if self.coord is not None:
            self.coord.join(app, self.controller.endpoint.node_id,
                            self.controller.endpoint.address)
            for node_id, agent in self.agents.items():
                self.coord.join(app, node_id, agent.endpoint.address)
        self.storage.add_write_listener(self._on_storage_write)
        register_scheme_metrics(self.sim.metrics, self, app)

    # -- StorageAPI ---------------------------------------------------------------
    @property
    def stats(self) -> AccessStats:
        return self._stats

    def _do_read(self, node_id: str, key: str, ctx: Optional[AccessContext] = None):
        agent = self.agents[node_id]
        start = self.sim.now
        value, kind = yield from agent.read(key, ctx)
        self._stats.record(kind, self.sim.now - start)
        return value

    def _do_write(self, node_id: str, key: str, value: object,
              ctx: Optional[AccessContext] = None):
        agent = self.agents[node_id]
        start = self.sim.now
        kind = yield from agent.write(key, value, ctx)
        self._stats.record(kind, self.sim.now - start)
        return None

    # -- agent lifecycle -------------------------------------------------------------
    def _bootstrap_agent(self, node_id: str) -> CacheAgent:
        agent = CacheAgent(self, node_id, self.capacity_for(node_id))
        self.agents[node_id] = agent
        self._wire_agent(agent)
        return agent

    def _wire_agent(self, agent: CacheAgent) -> None:
        agent.endpoint.register_handler("ping", ping_handler)
        agent.endpoint.register_handler(
            "membership", self._make_membership_handler(agent))
        agent.endpoint.register_handler(
            "recovery_complete", self._make_recovery_complete_handler(agent))
        agent.endpoint.register_handler(
            "domain_prepare", self._make_domain_prepare_handler(agent))
        agent.endpoint.register_handler(
            "domain_commit", self._make_domain_commit_handler(agent))
        agent.endpoint.register_handler(
            "dir_install", self._make_dir_install_handler(agent))

    def create_instance(self, node_id: str):
        """Admit a cache instance on ``node_id`` (generator; yield from).

        Runs the two-phase join: existing agents barrier the re-homed keys
        and transfer their directory entries to the new agent before the
        domain switches rings (Section III-D).
        """
        if node_id in self.agents:
            return self.agents[node_id]
        agent = CacheAgent(self, node_id, self.capacity_for(node_id))
        agent.ring = ring_with(self.ring_template, node_id)
        # The newcomer blocks its re-homed keys until commit.
        agent.raise_barrier(node_id, agent.ring.copy())
        self.agents[node_id] = agent
        self._wire_agent(agent)
        yield from self.controller.domain_join(node_id)
        self.ring_template.add(node_id)
        if self.coord is not None:
            self.coord.join(self.app, node_id, agent.endpoint.address)
        return agent

    def restart_instance(self, node_id: str):
        """Re-admit the cache instance on a restarted node (generator).

        Models a process restart after :meth:`Cluster.restart_node`:
        whatever the pre-crash instance held in memory is gone, so the
        agent must flush and re-enter through the two-phase join — it can
        never silently resume serving its stale cache or directory.

        Two situations arise.  Usually the crash was already declared
        while the node was down (heartbeat misses), the survivors purged
        it, and the "you failed" notification to the dead process was
        dropped — so the stale agent is ejected and re-admitted here.  If
        the restart beat the failure detector, the crash is declared
        explicitly first; the membership notification then reaches the
        now-live agent, which ejects and re-admits itself through the
        false-positive path, and this method just awaits that rejoin.
        """
        agent = self.agents.get(node_id)
        if agent is None:
            return (yield from self.create_instance(node_id))
        if node_id in self.ring_template.members:
            self.report_unreachable(node_id)
            for _attempt in range(RESTART_POLL_LIMIT):
                if agent.ejected or node_id not in self.ring_template.members:
                    break
                yield self.sim.timeout(RESTART_POLL_MS)
        if agent.ejected:
            # The false-positive path is already re-admitting the agent;
            # wait for its domain join to commit.
            for _attempt in range(RESTART_POLL_LIMIT):
                if not agent.ejected and node_id in self.ring_template.members:
                    break
                yield self.sim.timeout(RESTART_POLL_MS)
            return agent
        # Declared while the node was down: flush the lost process's
        # in-memory state and re-admit through the join protocol.
        agent.eject()
        yield from self._rejoin(agent)
        return agent

    def remove_instance(self, node_id: str):
        """Gracefully remove the cache instance on ``node_id`` (generator)."""
        agent = self.agents.get(node_id)
        if agent is None:
            return
        yield from self.controller.domain_leave(node_id)
        self.ring_template.remove(node_id)
        if self.coord is not None:
            self.coord.leave(self.app, node_id)
        del self.agents[node_id]
        agent.close()

    # -- memory -------------------------------------------------------------------
    def capacity_for(self, node_id: str) -> int:
        """Cache-instance budget on ``node_id`` (Section III-E)."""
        if self.capacity_override is not None:
            return self.capacity_override
        node = self.cluster.nodes.get(node_id)
        if node is None:
            return self.default_capacity
        if not node.containers_of(self.app):
            return self.default_capacity
        return node.unused_memory(self.app)

    # -- failure plumbing ----------------------------------------------------------
    def report_unreachable(self, peer: str) -> None:
        """A protocol RPC to ``peer`` timed out (Section III-H)."""
        if self.coord is not None:
            self.coord.report_unreachable(self.app, peer)

    def _make_membership_handler(self, agent: CacheAgent):
        def handler(endpoint, src, event: MembershipEvent):
            if event.kind != "failed":
                return None
            if event.member == agent.node_id:
                # False-positive ejection: we are alive but the domain
                # already wrote us off.  Flush everything and rejoin.
                if not agent.ejected:
                    agent.eject()
                    self.sim.spawn(
                        self._rejoin(agent), name=f"rejoin:{agent.node_id}",
                        daemon=True,
                    )
            else:
                yield from self._agent_recover(agent, event.member)
            return None
            yield  # pragma: no cover - generator marker
        return handler

    def _agent_recover(self, agent: CacheAgent, failed_member: str):
        """Local recovery steps at one surviving agent (Section III-F).

        A generator: flat systems never reach a yield (the handler's
        ``yield from`` runs it inline), but on a sharded system an agent
        that inherits shard leadership pays an explicit re-home cost in
        sim time before acking — extending the barrier window by the
        reconfiguration it models.
        """
        if failed_member in agent.ring.members:
            tracer = self.sim.tracer
            if tracer.active:
                tracer.instant("recovery:survivor", "recovery",
                               app=self.app, node=agent.node_id,
                               member=failed_member)
            obs = self.sim.obs
            if obs.active:
                obs.emit(RECOVERY_SURVIVOR, node=agent.node_id,
                         member=failed_member, app=self.app)
            snapshot = agent.ring.copy()
            agent.raise_barrier(failed_member, snapshot)
            agent.evict_keys_homed_at(failed_member, snapshot)
            agent.directory.remove_sharer_everywhere(failed_member)
            # The removal must land before the failover pause: the new
            # membership is already fact, and an interrupted failover
            # must not resurrect the failed member's ring slot.
            agent.ring.remove(failed_member)  # noqa: INT01
            agent.member_removed(failed_member)
            if self.shard_manager is not None:
                yield from self._shard_failover(agent, failed_member, snapshot)
        agent.endpoint.notify(
            self.controller.endpoint.address, "recovery_ack",
            (failed_member, agent.node_id), size_bytes=16,
            trace=INHERIT,
        )

    def _shard_failover(self, agent: CacheAgent, failed_member: str,
                        snapshot):
        """Take over shards the failed member led, adopting mirrors.

        The new leader of each failed-over shard is the next live replica
        in the shard's chain — a pure function of the membership set, so
        every survivor agrees without an election round.  Adoption of the
        async directory mirror is *sound regardless of mirror staleness*:
        the recovery sweep already evicted every copy homed at the dead
        leader, so a sharer the mirror missed holds no copy, and an extra
        sharer is the conservative superset the protocol tolerates
        everywhere (silent evictions, Section III-C2).
        """
        router = agent.ring
        gained = [
            shard for shard in range(router.num_shards)
            if snapshot.chain_of(shard)
            and snapshot.chain_of(shard)[0] == failed_member
            and router.chain_of(shard)
            and router.chain_of(shard)[0] == agent.node_id
        ]
        if not gained:
            return
        entries = []
        if self.replication > 1:
            gained_set = set(gained)
            entries = [
                (key, state, sharers)
                for key, (state, sharers) in sorted(agent.dir_mirror.items())
                if router.shard_of(key) in gained_set
            ]
        cost = SHARD_REHOME_MS * len(gained) + ADOPT_ENTRY_MS * len(entries)
        epoch = agent.epoch
        yield self.sim.timeout(cost)
        if agent.epoch != epoch or agent.ejected:
            # The membership moved again while this takeover was being
            # charged for; leadership may already belong to someone else,
            # so installing the adopted entries now would park them away
            # from their true home (or duplicate the new leader's).
            return
        router = agent.ring  # the ring object is replaced on rejoin
        live = router.members
        from repro.caching.base import SHARED  # local: avoid wide import

        for key, state, sharers in entries:
            if not router.chain_of(router.shard_of(key)) or \
                    router.chain_of(router.shard_of(key))[0] != agent.node_id:
                continue  # this shard moved on during the pause
            agent.dir_mirror.pop(key, None)
            pruned = {s for s in sharers
                      if s != failed_member and s in live}
            if not pruned:
                continue
            adopted_state = state if len(pruned) == len(sharers) else SHARED
            agent.directory.install(DirectoryEntry(
                key=key, state=adopted_state, sharers=pruned))
        if self.shard_manager is not None:
            self.shard_manager.record_adoption(
                agent.node_id, gained, len(entries), cost)

    def _rejoin(self, agent: CacheAgent):
        """Re-admit a falsely-ejected agent through the join protocol."""
        yield self.sim.timeout(RETRY_DELAY_MS)
        yield from self.controller.domain_join(agent.node_id)
        self.ring_template.add(agent.node_id)
        if self.coord is not None:
            self.coord.join(self.app, agent.node_id, agent.endpoint.address)

    def _make_recovery_complete_handler(self, agent: CacheAgent):
        def handler(endpoint, src, failed_member):
            agent.lift_barrier(failed_member)
            return None
            yield  # pragma: no cover - generator marker
        return handler

    # -- domain change plumbing -----------------------------------------------------
    def _make_domain_prepare_handler(self, agent: CacheAgent):
        def handler(endpoint, src, args):
            kind, member, participants = args
            if kind == "join":
                yield from self._prepare_join(agent, member, participants)
            else:
                yield from self._prepare_leave(agent, member)
            return Reply("prepared", size_bytes=1)
        return handler

    def _prepare_join(self, agent: CacheAgent, joiner: str, participants: list):
        if agent.node_id == joiner:
            # (Re)build the joiner's ring view from the authoritative
            # member list and block its keys until commit.
            agent.lift_barrier(joiner)
            agent.ring = self.ring_template.with_members(participants)
            agent.raise_barrier(joiner, agent.ring.copy())
            return
        new_ring = ring_with(agent.ring, joiner)
        agent.raise_barrier(joiner, new_ring)
        moving = keys_moving_to_joiner(agent.ring, joiner, agent.directory.keys())
        if moving:
            entries, release = yield from agent.pop_directory_entries_locked(moving)
            try:
                if entries:
                    yield from agent.endpoint.call(
                        f"{joiner}/concord-{self.app}", "dir_install", entries,
                        size_bytes=DIR_ENTRY_WIRE_BYTES * len(entries),
                        timeout=DEFAULT_RPC_TIMEOUT_MS,
                        trace=INHERIT,
                    )
            finally:
                release()

    def _prepare_leave(self, agent: CacheAgent, leaver: str):
        snapshot = agent.ring.copy()
        agent.raise_barrier(leaver, snapshot)
        agent.directory.remove_sharer_everywhere(leaver)
        if agent.node_id != leaver:
            return
        # The departing instance stops serving hits and re-homes all of
        # its directory entries to their consistent-hashing successors.
        agent.cache.clear()
        by_target = new_homes_for_leaver(
            agent.ring, leaver, agent.directory.keys())
        for target, keys in sorted(by_target.items()):
            entries, release = yield from agent.pop_directory_entries_locked(keys)
            try:
                if entries:
                    yield from agent.endpoint.call(
                        f"{target}/concord-{self.app}", "dir_install", entries,
                        size_bytes=DIR_ENTRY_WIRE_BYTES * len(entries),
                        timeout=DEFAULT_RPC_TIMEOUT_MS,
                        trace=INHERIT,
                    )
            finally:
                release()

    def _make_domain_commit_handler(self, agent: CacheAgent):
        def handler(endpoint, src, args):
            kind, member, roster = args
            if kind == "join":
                if member == agent.node_id:
                    # Rebuild from the commit-time roster rather than
                    # incrementing the prepare-time view: members that
                    # failed while this join was in flight were never
                    # announced to the (not-yet-member) joiner.
                    agent.ring = self.ring_template.with_members(roster)
                    agent.epoch += 1
                    agent.ejected = False  # rejoin complete
                else:
                    agent.ring.add(member)
                    agent.epoch += 1
            else:
                agent.ring.remove(member)
                agent.member_removed(member)
            agent.lift_barrier(member)
            self._sweep_strays(agent)
            return Reply("committed", size_bytes=1)
            yield  # pragma: no cover - generator marker
        return handler

    def _make_dir_install_handler(self, agent: CacheAgent):
        def handler(endpoint, src, entries):
            for entry in entries:
                agent.directory.install(entry)
            return Reply("installed", size_bytes=1)
            yield  # pragma: no cover - generator marker
        return handler

    def _sweep_strays(self, agent: CacheAgent) -> None:
        """Re-home directory entries ``agent`` no longer homes.

        The prepare phase transfers the entries that exist when the
        barrier goes up, but a shard failover can *adopt* mirror entries
        into the directory while a domain change is still in flight —
        those escape the transfer and would park at a non-home forever.
        Sweeping after every commit restores the entries-live-at-their-
        home invariant; on a converged ring the sweep finds nothing.
        """
        if agent.ejected or not agent.ring.members:
            return
        stray = [key for key in agent.directory.keys()
                 if agent.ring.home(key) != agent.node_id]
        if stray:
            self.sim.spawn(
                self._forward_strays(agent, stray),
                name=f"concord-strays:{self.app}:{agent.node_id}",
                daemon=True)

    def _forward_strays(self, agent: CacheAgent, keys: list):
        from repro.net.rpc import RpcError

        entries, release = yield from agent.pop_directory_entries_locked(keys)
        keep: list = []
        try:
            if agent.ejected or not agent.ring.members:
                return  # the domain wrote us off; these entries are dead
            by_home: dict[str, list] = {}
            for entry in entries:
                by_home.setdefault(agent.ring.home(entry.key), []).append(entry)
            # Keys a newer membership change re-homed back to us while
            # the sweep was quiescing them stay local (reinstalled in
            # the finally so an interrupt cannot drop them).
            keep = by_home.pop(agent.node_id, [])
            for home, group in sorted(by_home.items()):
                try:
                    yield from agent.endpoint.call(
                        f"{home}/concord-{self.app}", "dir_install", group,
                        size_bytes=DIR_ENTRY_WIRE_BYTES * len(group),
                        timeout=DEFAULT_RPC_TIMEOUT_MS,
                        trace=INHERIT,
                    )
                except RpcError:
                    # Unreachable home: it is (about to be) declared
                    # failed and recovery rebuilds its directory state,
                    # so the stale entries die with the attempt instead
                    # of parking here.
                    pass
        finally:
            for entry in keep:
                agent.directory.install(entry)
            release()

    # -- external writes ----------------------------------------------------------
    def _on_storage_write(self, key: str, value: object, version: int,
                          writer: str) -> None:
        """Storage listener: forward non-FaaS writes into the protocol."""
        if writer != "external":
            return
        self.controller.forward_external_write(key, version)

    # -- placement learning hook ----------------------------------------------------
    def observe_producer_consumer(self, producer_fn: str, consumer_fn: str) -> None:
        if self.pct_observer is not None:
            self.pct_observer(producer_fn, consumer_fn)

    # -- introspection (experiments) --------------------------------------------------
    def sharer_counts(self) -> list[int]:
        """Sharer-set sizes across all directory entries (Table I)."""
        counts = []
        for agent in self.agents.values():
            counts.extend(agent.directory.sharer_counts())
        return counts

    def cache_bytes(self) -> dict[str, int]:
        """Current cache occupancy per node (Figure 12)."""
        return {nid: agent.cache.used_bytes for nid, agent in self.agents.items()}

    def close(self) -> None:
        for agent in self.agents.values():
            agent.close()
        self.controller.close()
