"""Concord: the paper's directory-based distributed coherence protocol.

Public surface:

- :class:`~repro.core.concord.ConcordSystem` -- per-application distributed
  cache with the full coherence protocol, fault tolerance and dynamic
  coherence domains.
- :class:`~repro.core.hashring.ConsistentHashRing` -- home assignment.
- :class:`~repro.core.directory.DataDirectory` -- per-home directory.
"""

from repro.core.hashring import ConsistentHashRing, EmptyRingError
from repro.core.directory import DataDirectory, DirectoryEntry
from repro.core.concord import ConcordSystem

__all__ = [
    "ConcordSystem",
    "ConsistentHashRing",
    "DataDirectory",
    "DirectoryEntry",
    "EmptyRingError",
]
