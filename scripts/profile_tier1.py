"""Profile the tier-1 bench points and dump cProfile pstats files.

Usage::

    PYTHONPATH=src python scripts/profile_tier1.py [OUTDIR]

Writes ``<point>.pstats`` per tier-1 benchmark into OUTDIR (default
``profiles/``) plus a ``<point>.txt`` top-25 cumulative listing for
humans.  CI uploads the directory as the ``tier1-pstats`` artifact so
every run carries the profile evidence EXPERIMENTS.md reasons about.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from pathlib import Path

from repro.bench.suite import fig08_point, fig13_churn_point

POINTS = {
    "fig08_point": fig08_point,
    "fig13_churn_point": fig13_churn_point,
}


def main(argv: list) -> int:
    outdir = Path(argv[0]) if argv else Path("profiles")
    outdir.mkdir(parents=True, exist_ok=True)
    for name, target in POINTS.items():
        profiler = cProfile.Profile()
        profiler.enable()
        counters = target()
        profiler.disable()
        pstats_path = outdir / f"{name}.pstats"
        profiler.dump_stats(pstats_path)
        with open(outdir / f"{name}.txt", "w", encoding="utf-8") as handle:
            stats = pstats.Stats(str(pstats_path), stream=handle)
            stats.sort_stats("cumulative").print_stats(25)
            stats.sort_stats("tottime").print_stats(25)
        print(f"{name}: {counters} -> {pstats_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
