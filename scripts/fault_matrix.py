#!/usr/bin/env python
"""Fault matrix: randomized fault plans must replay deterministically.

For the given seed this script:

1. builds a randomized :class:`FaultPlan` (crash + restart + message
   drop/delay + storage brownout) over a 6-node cluster,
2. runs the canonical fault scenario twice in-process and compares the
   full outcome fingerprint (request counts, failure declarations,
   recovery count, injector log, coherence verdict, telemetry bytes),
3. re-runs the scenario in subprocesses under PYTHONHASHSEED=0 and =1
   and byte-compares the telemetry exports,
4. asserts the run ends coherent (zero invariant violations) with every
   injected crash detected.

On any failure the plan and a report land in ``--artifacts`` (CI uploads
them), so the exact failing schedule replays locally with::

    PYTHONPATH=src python scripts/fault_matrix.py --seed N

With ``--obs`` the first run also carries a protocol-event flight
recorder (provably fingerprint-neutral; the bench gate pins it), and on
failure its full dump lands next to the failing plan as
``flight_seed{N}.jsonl`` — ready for ``repro-inspect timeline``.

With ``--topology`` the same randomized schedule runs against a named
preset from :mod:`repro.shard.topologies` — crashes are re-targeted at
a shard *leader* (the shard index cycles with the seed) and regional
presets additionally partition one region mid-run, so the nightly
matrix sweeps the failure modes sharding introduces.

Usage::

With ``--scheme`` the scenario runs any registered caching scheme
instead of Concord — the nightly matrix sweeps the zoo catalogue so
every shipped scheme is exercised (and its own invariants verified)
under randomized crash/recovery schedules.

Usage::

    PYTHONPATH=src python scripts/fault_matrix.py [--seed N]
        [--topology NAME] [--scheme NAME] [--artifacts DIR]
        [--skip-subprocess] [--obs]
"""

import argparse
import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults.plan import FaultPlan, RegionPartition  # noqa: E402
from repro.faults.scenario import run_fault_scenario  # noqa: E402
from repro.schemes import available_names  # noqa: E402
from repro.shard.router import ShardRouter  # noqa: E402
from repro.shard.topologies import TOPOLOGIES  # noqa: E402

NUM_NODES = 6
DURATION_MS = 8000.0
RPS = 30.0

#: Emitted by the subprocess replay so the parent can extract the
#: telemetry bytes from stdout regardless of warnings/log noise.
MARKER = "===TELEMETRY==="

REPLAY_SNIPPET = """\
import json, sys
from repro.faults.plan import FaultPlan
from repro.shard.topologies import TOPOLOGIES
from repro.faults.scenario import run_fault_scenario

plan = FaultPlan.from_json(sys.argv[1])
topology = TOPOLOGIES[sys.argv[2]]
out = run_fault_scenario(plan, seed=plan.seed, num_nodes={num_nodes},
                         duration_ms={duration}, rps={rps},
                         scheme=sys.argv[3],
                         **topology.scenario_kwargs())
print({marker!r})
sys.stdout.write(out.telemetry_jsonl)
"""


def build_plan(seed: int, topology: str = "flat") -> FaultPlan:
    node_ids = [f"node{i}" for i in range(NUM_NODES)]
    plan = FaultPlan.random(
        seed=seed, node_ids=node_ids, horizon_ms=DURATION_MS,
        crashes=1, restart=True, drops=1, delays=1, brownouts=1,
    )
    topo = TOPOLOGIES[topology]
    if topo.shards is None:
        return plan
    # Shard-aware targeting: aim every crash/restart at a shard leader
    # (which shard cycles with the seed, so the nightly sweep visits
    # different leaders) instead of the random victim.
    router = ShardRouter(node_ids, num_shards=topo.shards,
                         replication=topo.replication)
    leader = router.leader_of(seed % topo.shards)
    events = [
        replace(event, node=leader)
        if event.kind in ("NodeCrash", "NodeRestart") else event
        for event in plan.events
    ]
    if topo.regions is not None:
        region = f"region{seed % topo.regions}"
        events.append(RegionPartition(
            at_ms=0.45 * DURATION_MS, duration_ms=600.0, region=region))
    return FaultPlan(events=tuple(events), seed=seed)


def subprocess_telemetry(plan: FaultPlan, topology: str,
                         hashseed: str, scheme: str = "concord") -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    snippet = REPLAY_SNIPPET.format(
        num_nodes=NUM_NODES, duration=DURATION_MS, rps=RPS, marker=MARKER)
    proc = subprocess.run(
        [sys.executable, "-c", snippet, plan.to_json(), topology, scheme],
        env=env, capture_output=True, text=True, timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"replay under PYTHONHASHSEED={hashseed} failed:\n{proc.stderr}")
    return proc.stdout.split(MARKER + "\n", 1)[1]


def check_seed(seed: int, skip_subprocess: bool,
               obs: bool = False, topology: str = "flat",
               scheme: str = "concord") -> tuple:
    """Run the matrix cell for one seed.

    Returns ``(problems, obs_jsonl)`` — the flight-recorder dump is ""
    unless ``obs`` was requested.
    """
    problems = []
    plan = build_plan(seed, topology)
    kwargs = TOPOLOGIES[topology].scenario_kwargs()
    print(f"[seed {seed}/{topology}/{scheme}] plan: {', '.join(plan.kinds())}")

    first = run_fault_scenario(plan, seed=seed, num_nodes=NUM_NODES,
                               duration_ms=DURATION_MS, rps=RPS, obs=obs,
                               scheme=scheme, **kwargs)
    second = run_fault_scenario(plan, seed=seed, num_nodes=NUM_NODES,
                                duration_ms=DURATION_MS, rps=RPS,
                                scheme=scheme, **kwargs)
    if first.fingerprint() != second.fingerprint():
        problems.append("in-process replay diverged (same seed, same plan)")

    crashes = sum(1 for e in plan.events if e.kind == "NodeCrash")
    detected = {node for _t, _app, node in first.failures_detected}
    if len(detected) < crashes:
        problems.append(
            f"{crashes} crash(es) injected but only {sorted(detected)} "
            "declared failed")
    if first.violations:
        problems.append(
            "invariant violations after recovery: "
            + "; ".join(first.violations))
    if first.completed == 0:
        problems.append("no requests completed")

    if not skip_subprocess:
        tele0 = subprocess_telemetry(plan, topology, "0", scheme)
        tele1 = subprocess_telemetry(plan, topology, "1", scheme)
        if tele0 != tele1:
            problems.append("telemetry differs between PYTHONHASHSEED 0 and 1")
        if tele0 != first.telemetry_jsonl:
            problems.append("subprocess telemetry differs from in-process run")

    status = "ok" if not problems else "FAIL"
    print(f"[seed {seed}/{topology}/{scheme}] completed={first.completed} "
          f"failures_detected={len(first.failures_detected)} "
          f"recoveries={first.recoveries_completed} "
          f"violations={len(first.violations)} -> {status}")
    return problems, first.obs_jsonl


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-plan seed (default 0)")
    parser.add_argument("--topology", default="flat",
                        choices=sorted(TOPOLOGIES),
                        help="topology preset to run the plan against "
                             "(default flat)")
    parser.add_argument("--scheme", default="concord",
                        choices=available_names(),
                        help="caching scheme under test (default concord)")
    parser.add_argument("--artifacts", default="fault-artifacts",
                        help="directory for failing plans/reports")
    parser.add_argument("--skip-subprocess", action="store_true",
                        help="skip the PYTHONHASHSEED subprocess replays")
    parser.add_argument("--obs", action="store_true",
                        help="record protocol events; on failure the "
                             "flight-recorder dump is written next to "
                             "the failing plan")
    args = parser.parse_args(argv)

    problems, obs_jsonl = check_seed(args.seed, args.skip_subprocess,
                                     obs=args.obs, topology=args.topology,
                                     scheme=args.scheme)
    if not problems:
        return 0

    artifacts = Path(args.artifacts)
    artifacts.mkdir(parents=True, exist_ok=True)
    cell = f"seed{args.seed}_{args.topology}_{args.scheme}"
    plan = build_plan(args.seed, args.topology)
    plan.save(artifacts / f"failing_plan_{cell}.json")
    if obs_jsonl:
        flight_path = artifacts / f"flight_{cell}.jsonl"
        flight_path.write_text(obs_jsonl, encoding="utf-8")
    report = {
        "seed": args.seed,
        "topology": args.topology,
        "scheme": args.scheme,
        "num_nodes": NUM_NODES,
        "duration_ms": DURATION_MS,
        "rps": RPS,
        "problems": problems,
    }
    report_path = artifacts / f"report_{cell}.json"
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    print(f"artifacts written to {artifacts}/", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
