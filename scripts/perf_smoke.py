#!/usr/bin/env python
"""Perf smoke: two fixed-seed simulator runs timed on the wall clock.

CI runs this on every push (the ``perf-smoke`` job) and uploads the
result as the ``BENCH_tier1.json`` artifact, so a slow regression in the
simulator hot path shows up as a number, not a hunch.  The two points
are chosen to exercise the expensive paths:

* ``fig08_point`` — one throughput grid point (8 nodes, mixed apps,
  near the SLO knee): the protocol + FaaS fast path.
* ``fig13_churn_point`` — one churn run (16 nodes, 24 removals/min):
  membership changes, directory transfers, barrier churn.

Simulated throughput is reported alongside wall time: a perf change that
also moves the *simulated* numbers is a behavior change, not a speedup.

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py [--out BENCH_tier1.json]
"""

import argparse
import json
import platform
import sys

# Wall-clock is the measurement here (simulator speed), never simulation
# input — exempt from the determinism rule.
import time  # noqa: DET01

from repro.experiments.fig13_churn import _throughput_at
from repro.experiments.runner import MixedRunConfig, run_mixed_workload

SEED = 1009


def bench_fig08_point() -> dict:
    config = MixedRunConfig(
        scheme="concord", num_nodes=8, cores_per_node=4,
        utilization=None, total_rps=115,
        duration_ms=5000.0, warmup_ms=1500.0, seed=SEED,
    )
    start = time.perf_counter()
    outcome = run_mixed_workload(config)
    wall_s = time.perf_counter() - start
    completed = sum(s.completed for s in outcome.per_app.values())
    return {
        "wall_time_s": round(wall_s, 3),
        "simulated_ms": config.duration_ms,
        "requests_completed": completed,
        "simulated_rps": round(completed / (config.duration_ms / 1000.0), 2),
        "sim_ms_per_wall_s": round(config.duration_ms / wall_s, 1),
    }


def bench_fig13_churn_point() -> dict:
    duration_ms = 8000.0
    start = time.perf_counter()
    throughput, _registry = _throughput_at(
        24, duration_ms=duration_ms, seed=SEED)
    wall_s = time.perf_counter() - start
    return {
        "wall_time_s": round(wall_s, 3),
        "simulated_ms": duration_ms,
        "simulated_rps": round(throughput, 2),
        "sim_ms_per_wall_s": round(duration_ms / wall_s, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_tier1.json",
                        help="output path (default: BENCH_tier1.json)")
    args = parser.parse_args(argv)

    report = {
        "seed": SEED,
        "python": platform.python_version(),
        "benchmarks": {
            "fig08_point": bench_fig08_point(),
            "fig13_churn_point": bench_fig13_churn_point(),
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
