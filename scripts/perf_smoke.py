#!/usr/bin/env python
"""Perf smoke: the tier-1 bench suite through ``repro.bench``.

Thin wrapper kept for muscle memory and old CI configs — it is exactly::

    python -m repro.bench run --suite tier1 --out BENCH_tier1.json

The two fixed-seed simulator points (``fig08_point``,
``fig13_churn_point``) are defined once in :mod:`repro.bench.suite`; the
executor owns the wall clock and the report keeps the historical
``BENCH_tier1.json`` schema (now versioned and baseline-comparable —
gate with ``repro-bench compare BENCH_tier1.json BENCH_baseline.json``).

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py [--out BENCH_tier1.json]
"""

import argparse
import json
import sys

from repro.bench import build_report, run_jobs, write_report
from repro.bench.suite import DEFAULT_SEED, tier1_suite


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_tier1.json",
                        help="output path (default: BENCH_tier1.json)")
    args = parser.parse_args(argv)

    results = run_jobs(tier1_suite())
    report = build_report(results, seed=DEFAULT_SEED)
    write_report(report, args.out)
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0 if all(result.ok for result in results) else 1


if __name__ == "__main__":
    sys.exit(main())
