"""Render a per-benchmark sim_ms_per_wall_s delta table as markdown.

Usage::

    python scripts/bench_summary.py CURRENT.json BASELINE.json

CI appends the output to ``$GITHUB_STEP_SUMMARY`` after the bench gate,
so every run shows at a glance how far each benchmark's simulation rate
moved against the committed baseline.  Exits 0 even when a report is
missing (the gate step already failed loudly in that case).
"""

from __future__ import annotations

import json
import sys


def _load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle).get("benchmarks", {})
    except (OSError, ValueError):
        return {}


def main(argv: list) -> int:
    if len(argv) != 2:
        print("usage: bench_summary.py CURRENT.json BASELINE.json",
              file=sys.stderr)
        return 0
    current, baseline = _load(argv[0]), _load(argv[1])
    if not current:
        print(f"_no bench report at `{argv[0]}`_")
        return 0
    print("### Bench gate: sim_ms_per_wall_s vs baseline\n")
    print("| benchmark | baseline | current | delta |")
    print("|---|---:|---:|---:|")
    for name in sorted(set(current) | set(baseline)):
        now = current.get(name, {}).get("sim_ms_per_wall_s")
        then = baseline.get(name, {}).get("sim_ms_per_wall_s")
        if now is None or then is None or not then:
            delta = "n/a"
        else:
            delta = f"{100.0 * (now - then) / then:+.1f}%"
        fmt = lambda v: f"{v:,.1f}" if isinstance(v, (int, float)) else "—"
        print(f"| `{name}` | {fmt(then)} | {fmt(now)} | {delta} |")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
