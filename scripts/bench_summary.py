"""Render a per-benchmark sim_ms_per_wall_s delta table as markdown.

Usage::

    python scripts/bench_summary.py CURRENT.json BASELINE.json

CI appends the output to ``$GITHUB_STEP_SUMMARY`` after the bench gate,
so every run shows at a glance how far each benchmark's simulation rate
moved against the committed baseline.  When the suite contains
flight-recorder twins (``X`` paired with ``X_obs``), a second table
reports the recorder's wall overhead per pair.  Exits 0 even when a
report is missing (the gate step already failed loudly in that case).
"""

from __future__ import annotations

import json
import sys


def _load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle).get("benchmarks", {})
    except (OSError, ValueError):
        return {}


def main(argv: list) -> int:
    if len(argv) != 2:
        print("usage: bench_summary.py CURRENT.json BASELINE.json",
              file=sys.stderr)
        return 0
    current, baseline = _load(argv[0]), _load(argv[1])
    if not current:
        print(f"_no bench report at `{argv[0]}`_")
        return 0
    print("### Bench gate: sim_ms_per_wall_s vs baseline\n")
    print("| benchmark | baseline | current | delta |")
    print("|---|---:|---:|---:|")
    for name in sorted(set(current) | set(baseline)):
        now = current.get(name, {}).get("sim_ms_per_wall_s")
        then = baseline.get(name, {}).get("sim_ms_per_wall_s")
        if now is None or then is None or not then:
            delta = "n/a"
        else:
            delta = f"{100.0 * (now - then) / then:+.1f}%"
        fmt = lambda v: f"{v:,.1f}" if isinstance(v, (int, float)) else "—"
        print(f"| `{name}` | {fmt(then)} | {fmt(now)} | {delta} |")
    _print_recorder_overhead(current)
    return 0


def _print_recorder_overhead(current: dict) -> None:
    """Wall overhead of each ``X``/``X_obs`` flight-recorder pair."""
    pairs = [(name, f"{name}_obs") for name in sorted(current)
             if f"{name}_obs" in current]
    if not pairs:
        return
    print("\n### Flight-recorder overhead (obs-on vs obs-off wall time)\n")
    print("| benchmark | off (s) | on (s) | overhead | events |")
    print("|---|---:|---:|---:|---:|")
    for plain, obs in pairs:
        off = current[plain].get("wall_time_s")
        on = current[obs].get("wall_time_s")
        events = current[obs].get("events_recorded", "—")
        if not off or on is None:
            overhead = "n/a"
            off_s = on_s = "—"
        else:
            overhead = f"{100.0 * (on - off) / off:+.1f}%"
            off_s, on_s = f"{off:.3f}", f"{on:.3f}"
        print(f"| `{plain}` | {off_s} | {on_s} | {overhead} | {events} |")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
