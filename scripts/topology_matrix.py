#!/usr/bin/env python
"""Topology matrix: every topology's smoke plan must replay identically.

For the given topology cell this script:

1. loads the named preset from :mod:`repro.shard.topologies` and its
   canonical smoke plan (crash the shard-0 leader, partition a region —
   whatever the topology adds),
2. runs the scenario twice in-process and compares the full outcome
   fingerprint (request counts, failure declarations, injector log,
   coherence verdict, telemetry bytes, shard table, re-home counters),
3. re-runs it in subprocesses under PYTHONHASHSEED=0 and =1 and
   byte-compares the full fingerprints (not just telemetry — the shard
   table and re-home counters must be hash-seed-independent too),
4. asserts the run ends coherent (zero invariant violations).

On any failure the plan, a report, and the divergent fingerprint dumps
land in ``--artifacts`` (CI uploads them), so the failing cell replays
locally with::

    PYTHONPATH=src python scripts/topology_matrix.py --topology NAME

Usage::

    PYTHONPATH=src python scripts/topology_matrix.py [--topology NAME]
        [--seed N] [--artifacts DIR] [--skip-subprocess] [--obs]
"""

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.shard.topologies import (  # noqa: E402
    TOPOLOGIES,
    run_topology_scenario,
    smoke_plan,
)

#: Emitted by the subprocess replay so the parent can extract the
#: fingerprint repr from stdout regardless of warnings/log noise.
MARKER = "===FINGERPRINT==="

REPLAY_SNIPPET = """\
import sys
from repro.faults.plan import FaultPlan
from repro.shard.topologies import run_topology_scenario

plan = FaultPlan.from_json(sys.argv[2])
out = run_topology_scenario(sys.argv[1], seed=int(sys.argv[3]), plan=plan)
print({marker!r})
sys.stdout.write(repr(out.fingerprint()))
"""


def subprocess_fingerprint(topology: str, plan, seed: int,
                           hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    snippet = REPLAY_SNIPPET.format(marker=MARKER)
    proc = subprocess.run(
        [sys.executable, "-c", snippet, topology, plan.to_json(), str(seed)],
        env=env, capture_output=True, text=True, timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"replay under PYTHONHASHSEED={hashseed} failed:\n{proc.stderr}")
    return proc.stdout.split(MARKER + "\n", 1)[1]


def check_cell(topology: str, seed: int, skip_subprocess: bool,
               obs: bool = False) -> tuple:
    """Run the matrix cell for one topology.

    Returns ``(problems, fingerprints, obs_jsonl)`` — ``fingerprints``
    maps label -> fingerprint repr for divergence dumps.
    """
    problems = []
    fingerprints = {}
    plan = smoke_plan(topology)
    print(f"[{topology}] plan: {', '.join(plan.kinds())}")

    first = run_topology_scenario(topology, seed=seed, plan=plan, obs=obs)
    second = run_topology_scenario(topology, seed=seed, plan=plan)
    fingerprints["inprocess_a"] = repr(first.fingerprint())
    fingerprints["inprocess_b"] = repr(second.fingerprint())
    if first.fingerprint() != second.fingerprint():
        problems.append("in-process replay diverged (same seed, same plan)")

    if first.violations:
        problems.append(
            "coherence violations after recovery: "
            + "; ".join(first.violations))
    if first.completed == 0:
        problems.append("no requests completed")
    if TOPOLOGIES[topology].shards is not None and not first.shard_table:
        problems.append("sharded topology produced an empty shard table")

    if not skip_subprocess:
        fp0 = subprocess_fingerprint(topology, plan, seed, "0")
        fp1 = subprocess_fingerprint(topology, plan, seed, "1")
        fingerprints["hashseed0"] = fp0
        fingerprints["hashseed1"] = fp1
        if fp0 != fp1:
            problems.append(
                "fingerprint differs between PYTHONHASHSEED 0 and 1")
        if fp0 != fingerprints["inprocess_a"]:
            problems.append(
                "subprocess fingerprint differs from in-process run")

    status = "ok" if not problems else "FAIL"
    print(f"[{topology}] completed={first.completed} "
          f"failovers={first.shard_failovers} "
          f"rehomed={first.shards_rehomed} "
          f"violations={len(first.violations)} -> {status}")
    return problems, fingerprints, first.obs_jsonl


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", default="flat",
                        choices=sorted(TOPOLOGIES),
                        help="matrix cell to run (default flat)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--artifacts", default="topology-artifacts",
                        help="directory for failing plans/reports")
    parser.add_argument("--skip-subprocess", action="store_true",
                        help="skip the PYTHONHASHSEED subprocess replays")
    parser.add_argument("--obs", action="store_true",
                        help="record protocol events; on failure the "
                             "flight-recorder dump is written next to "
                             "the failing plan")
    args = parser.parse_args(argv)

    problems, fingerprints, obs_jsonl = check_cell(
        args.topology, args.seed, args.skip_subprocess, obs=args.obs)
    if not problems:
        return 0

    artifacts = Path(args.artifacts)
    artifacts.mkdir(parents=True, exist_ok=True)
    cell = f"{args.topology}_seed{args.seed}"
    smoke_plan(args.topology).save(artifacts / f"failing_plan_{cell}.json")
    for label, dump in sorted(fingerprints.items()):
        (artifacts / f"fingerprint_{cell}_{label}.txt").write_text(
            dump, encoding="utf-8")
    if obs_jsonl:
        (artifacts / f"flight_{cell}.jsonl").write_text(
            obs_jsonl, encoding="utf-8")
    report = {
        "topology": args.topology,
        "seed": args.seed,
        "problems": problems,
    }
    with open(artifacts / f"report_{cell}.json", "w",
              encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    print(f"artifacts written to {artifacts}/", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
